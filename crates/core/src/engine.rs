//! Parallel cluster analysis engine.
//!
//! A cluster run produces one trace file per node, and each node's
//! load → decode → timeline → correlate pipeline is independent of every
//! other node's — embarrassingly parallel work the sequential CLI used to
//! do one file at a time. [`Engine`] fans the per-node pipelines out over
//! a work-stealing thread pool and returns results **in input order**, so
//! callers render reports and merge [`ClusterProfile`]s deterministically:
//! the output of an N-worker engine is byte-identical to a 1-worker run.
//!
//! The requested job count is clamped to the machine's available
//! parallelism — asking for 4 workers on a 1-CPU box used to *cost* time
//! (context-switch churn on pure CPU work); now it resolves to 1 and the
//! engine runs inline without spawning a pool at all. Whatever width is
//! left over is budgeted down to the per-file correlate shard count, so a
//! cluster-wide fan-out never multiplies into `files × shards` threads.
//!
//! [`Engine::render_files`] layers the [`AnalysisCache`] over the same
//! pipeline: each trace's raw bytes are hashed first, and on a cache hit
//! the decode/timeline/correlate/render work is skipped entirely.
//!
//! [`ClusterProfile`]: crate::merge::ClusterProfile

use crate::cache::{AnalysisCache, CacheKey};
use crate::parser::{analyze_trace_salvaged_impl, AnalysisOptions};
use crate::profile::NodeProfile;
use rayon::prelude::*;
use std::cell::RefCell;
use std::io::Read;
use tempest_probe::limits::{CancelToken, DecodeLimits};
use tempest_probe::trace::Trace;

/// A configured degree of parallelism for per-node analysis.
pub struct Engine {
    /// `None` at effective width 1: work runs inline on the caller's
    /// thread with zero pool overhead.
    pool: Option<rayon::ThreadPool>,
    width: usize,
}

impl Engine {
    /// Build an engine fanning out to `jobs` workers; `0` means one per
    /// available CPU. Requests beyond the machine's available parallelism
    /// are clamped — oversubscribing pure CPU work only adds switch churn.
    pub fn new(jobs: usize) -> Engine {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let width = if jobs == 0 { avail } else { jobs.min(avail) };
        let pool = if width > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(width)
                    .build()
                    .expect("thread pool construction is infallible"),
            )
        } else {
            None
        };
        Engine { pool, width }
    }

    /// The worker count this engine resolves to (after clamping).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Parallel map preserving input order. The unit the engine schedules:
    /// per-node analyses, doctor triage, any independent per-file work.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        match &self.pool {
            Some(pool) => pool.install(|| items.into_par_iter().map(f).collect()),
            None => items.into_iter().map(f).collect(),
        }
    }

    /// Run the full single-node pipeline (read file → decode → analyze)
    /// for each path concurrently. The result vector is parallel to
    /// `paths`; each failure carries a `"{path}: {cause}"` message exactly
    /// as the sequential loader produced, so error reporting is unchanged.
    ///
    /// Under `options.recover` each file is decoded with salvage and its
    /// losses flow into the profile's `DataQuality`; otherwise decoding
    /// and analysis are strict.
    #[deprecated(
        since = "0.1.0",
        note = "use tempest_core::api::AnalysisRequest::analyze_on instead"
    )]
    pub fn analyze_files(
        &self,
        paths: &[String],
        options: AnalysisOptions,
    ) -> Vec<Result<NodeProfile, String>> {
        self.analyze_files_impl(paths, options)
    }

    /// The pipeline behind the deprecated [`Engine::analyze_files`] shim
    /// and [`crate::api::AnalysisRequest::analyze_on`].
    pub(crate) fn analyze_files_impl(
        &self,
        paths: &[String],
        options: AnalysisOptions,
    ) -> Vec<Result<NodeProfile, String>> {
        let options = self.budget_shards(paths.len(), options);
        let paths: Vec<String> = paths.to_vec();
        self.map(paths, move |path| analyze_one(&path, options))
    }

    /// Read → hash → (cache hit | decode → analyze → render → store) for
    /// each path, concurrently and in input order. `render` turns one
    /// node's profile into its final output text; that text — cached under
    /// the trace's content hash and the options/`format` fingerprint — is
    /// exactly what a later run with an unchanged trace gets back without
    /// re-analyzing. Without a cache this is `analyze_files` + `render`.
    pub fn render_files<F>(
        &self,
        paths: &[String],
        options: AnalysisOptions,
        cache: Option<&AnalysisCache>,
        format: &str,
        render: F,
    ) -> Vec<Result<String, String>>
    where
        F: Fn(&NodeProfile) -> String + Sync,
    {
        let options = self.budget_shards(paths.len(), options);
        let format = format.to_string();
        let paths: Vec<String> = paths.to_vec();
        self.map(paths, move |path| {
            with_file_bytes(&path, |bytes| {
                let key = cache.map(|c| (c, CacheKey::new(bytes, options, &format)));
                if let Some((cache, key)) = &key {
                    if let Some(text) = cache.lookup(key) {
                        return Ok(text);
                    }
                }
                let profile = decode_and_analyze(bytes, &path, options)?;
                let text = {
                    let _stage = tempest_obs::stage("render");
                    render(&profile)
                };
                if let Some((cache, key)) = &key {
                    // Best-effort: an unwritable cache dir degrades to
                    // uncached operation, it doesn't fail the report.
                    // Profiles bounded by a limit or deadline are partial
                    // by policy, not a property of the input bytes — they
                    // must never be served as the full answer later.
                    if !profile.quality.was_limited() {
                        let _ = cache.store(key, &text);
                    }
                }
                Ok(text)
            })?
        })
    }

    /// Divide this engine's width across `n_files` concurrent pipelines:
    /// when the caller didn't pin a shard count, each file's correlate
    /// gets `width / n_files` shards (at least 1) so a cluster fan-out
    /// never oversubscribes into `files × CPUs` threads. Single-file runs
    /// keep auto sharding, clamped to the engine width.
    fn budget_shards(&self, n_files: usize, mut options: AnalysisOptions) -> AnalysisOptions {
        if options.shards == 0 && n_files > 0 {
            options.shards = (self.width / n_files).max(1);
        }
        options
    }
}

thread_local! {
    /// Per-worker scratch buffer for raw trace bytes, reused across files
    /// so a multi-node analysis does one large allocation per worker
    /// instead of one per file.
    static READ_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Read `path` into the worker's reusable scratch buffer and hand the
/// bytes to `f`. The buffer keeps its capacity between files (bounded by
/// the largest trace this worker has seen) but is shrunk when a small
/// file follows a much larger one, so peak RSS tracks the working set
/// rather than the high-water mark.
fn with_file_bytes<R>(path: &str, f: impl FnOnce(&[u8]) -> R) -> Result<R, String> {
    READ_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        let mut file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        file.read_to_end(&mut buf)
            .map_err(|e| format!("{path}: {e}"))?;
        let out = f(&buf);
        if buf.capacity() > 4 * buf.len().max(64 * 1024) {
            buf.shrink_to_fit();
        }
        Ok(out)
    })
}

/// One node's pipeline minus the file read: decode (salvaging when
/// recovery is on), then analyze.
fn decode_and_analyze(
    bytes: &[u8],
    path: &str,
    options: AnalysisOptions,
) -> Result<NodeProfile, String> {
    let cancel = CancelToken::until_opt(options.deadline);
    let limits = DecodeLimits::default();
    let (trace, salvage) = {
        let _stage = tempest_obs::stage("decode");
        // A deadline implies salvage decoding even without --recover: a
        // deadline trip mid-decode must yield the partial prefix, not an
        // error that discards everything already decoded.
        if options.recover || options.deadline.is_some() {
            let (t, r) = Trace::decode_salvage_with(bytes, &limits, &cancel)
                .map_err(|e| format!("{path}: {e}"))?;
            (t, Some(r))
        } else {
            (
                Trace::decode_with(bytes, &limits, &cancel).map_err(|e| format!("{path}: {e}"))?,
                None,
            )
        }
    };
    analyze_trace_salvaged_impl(&trace, salvage.as_ref(), options)
        .map_err(|e| format!("{path}: {e}"))
}

/// One node's pipeline: read the whole file, decode, analyze.
fn analyze_one(path: &str, options: AnalysisOptions) -> Result<NodeProfile, String> {
    with_file_bytes(path, |bytes| decode_and_analyze(bytes, path, options))?
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_probe::event::{Event, ThreadId};
    use tempest_probe::func::{FunctionDef, FunctionId, ScopeKind};
    use tempest_probe::trace::{NodeMeta, SensorMeta};
    use tempest_sensors::{SensorId, SensorKind, SensorReading, Temperature};

    fn mini_trace(node_id: u32) -> Trace {
        let sec = 1_000_000_000u64;
        Trace {
            node: NodeMeta {
                node_id,
                hostname: format!("node{node_id}"),
                sensors: vec![SensorMeta {
                    id: SensorId(0),
                    label: "CPU0 die".into(),
                    kind: SensorKind::CpuCore,
                }],
            },
            functions: vec![FunctionDef {
                id: FunctionId(0),
                name: "main".into(),
                address: 0x400000,
                kind: ScopeKind::Function,
            }],
            events: vec![
                Event::enter(0, ThreadId(0), FunctionId(0)),
                Event::exit(10 * sec, ThreadId(0), FunctionId(0)),
            ],
            samples: (0..40)
                .map(|i| {
                    SensorReading::new(
                        SensorId(0),
                        i * 250_000_000,
                        Temperature::from_celsius(40.0 + node_id as f64),
                    )
                })
                .collect(),
        }
    }

    fn write_traces(tag: &str, n: u32) -> (std::path::PathBuf, Vec<String>) {
        let dir = std::env::temp_dir().join(format!("tempest-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = (0..n)
            .map(|i| {
                let p = dir.join(format!("node{i}.trace"));
                mini_trace(i).save(&p).unwrap();
                p.to_str().unwrap().to_string()
            })
            .collect();
        (dir, paths)
    }

    #[test]
    fn results_come_back_in_input_order() {
        let (dir, mut paths) = write_traces("order", 6);
        paths.reverse(); // input order 5,4,3,2,1,0
        let engine = Engine::new(4);
        let results = engine.analyze_files_impl(&paths, AnalysisOptions::default());
        let ids: Vec<u32> = results
            .iter()
            .map(|r| r.as_ref().unwrap().node.node_id)
            .collect();
        assert_eq!(ids, vec![5, 4, 3, 2, 1, 0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_sequential() {
        let (dir, paths) = write_traces("match", 4);
        let seq = Engine::new(1).analyze_files_impl(&paths, AnalysisOptions::default());
        let par = Engine::new(4).analyze_files_impl(&paths, AnalysisOptions::default());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.node, b.node);
            assert_eq!(a.functions.len(), b.functions.len());
            for (fa, fb) in a.functions.iter().zip(&b.functions) {
                assert_eq!(fa.func, fb.func);
                assert_eq!(fa.inclusive_ns, fb.inclusive_ns);
                assert_eq!(fa.thermal, fb.thermal);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_error_carries_path_in_place() {
        let (dir, mut paths) = write_traces("err", 2);
        paths.insert(1, "/nonexistent/gone.trace".to_string());
        let results = Engine::new(2).analyze_files_impl(&paths, AnalysisOptions::default());
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.starts_with("/nonexistent/gone.trace:"), "{err}");
        assert!(results[2].is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_salvages_truncated_member() {
        let (dir, paths) = write_traces("salvage", 1);
        let bytes = std::fs::read(&paths[0]).unwrap();
        let cut = dir.join("cut.trace");
        std::fs::write(&cut, &bytes[..bytes.len() * 6 / 10]).unwrap();
        let cut_s = cut.to_str().unwrap().to_string();

        // Strict: decode error mentions the path.
        let strict = Engine::new(2)
            .analyze_files_impl(std::slice::from_ref(&cut_s), AnalysisOptions::default());
        assert!(strict[0].is_err());

        // Recover: profile produced, losses recorded.
        let rec = Engine::new(2).analyze_files_impl(&[cut_s], AnalysisOptions::recovering());
        let p = rec[0].as_ref().unwrap();
        assert!(!p.quality.is_pristine());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let engine = Engine::new(0);
        assert!(engine.width() >= 1);
    }

    #[test]
    fn jobs_clamped_to_available_parallelism() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Engine::new(4096).width(), avail);
        assert_eq!(Engine::new(1).width(), 1);
    }

    #[test]
    fn width_one_runs_inline_without_a_pool() {
        let engine = Engine::new(1);
        assert!(engine.pool.is_none());
        let caller = std::thread::current().id();
        let seen = engine.map(vec![1, 2, 3], |i| (i * 2, std::thread::current().id()));
        assert_eq!(
            seen.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
        assert!(seen.iter().all(|(_, t)| *t == caller));
    }

    #[test]
    fn render_files_matches_analyze_plus_render() {
        let (dir, paths) = write_traces("render", 3);
        let engine = Engine::new(2);
        let direct: Vec<String> = engine
            .analyze_files_impl(&paths, AnalysisOptions::default())
            .into_iter()
            .map(|r| crate::report::render_stdout(&r.unwrap()))
            .collect();
        let rendered = engine.render_files(
            &paths,
            AnalysisOptions::default(),
            None,
            "text",
            crate::report::render_stdout,
        );
        let rendered: Vec<String> = rendered.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(direct, rendered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_files_second_run_hits_cache_byte_identical() {
        let (dir, paths) = write_traces("cache", 2);
        let cache_dir = dir.join("cache");
        let cache = AnalysisCache::open(&cache_dir).unwrap();
        let engine = Engine::new(2);
        tempest_obs::global().set_enabled(true);
        let hits_before = tempest_obs::global().counter("cache_hits_total").get();

        let first = engine.render_files(
            &paths,
            AnalysisOptions::default(),
            Some(&cache),
            "text",
            crate::report::render_stdout,
        );
        let after_first = tempest_obs::global().counter("cache_hits_total").get();
        assert_eq!(after_first, hits_before, "cold cache cannot hit");

        let second = engine.render_files(
            &paths,
            AnalysisOptions::default(),
            Some(&cache),
            "text",
            crate::report::render_stdout,
        );
        let after_second = tempest_obs::global().counter("cache_hits_total").get();
        assert_eq!(
            after_second - after_first,
            2,
            "both files served from cache"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }

        // Replacing the trace content invalidates just that file's entry.
        mini_trace(7).save(std::path::Path::new(&paths[0])).unwrap();
        let third = engine.render_files(
            &paths,
            AnalysisOptions::default(),
            Some(&cache),
            "text",
            crate::report::render_stdout,
        );
        assert_ne!(
            third[0].as_ref().unwrap(),
            second[0].as_ref().unwrap(),
            "changed trace re-renders"
        );
        assert_eq!(third[1].as_ref().unwrap(), second[1].as_ref().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_budget_divides_width_across_files() {
        let engine = Engine {
            pool: None,
            width: 8,
        };
        let auto = AnalysisOptions::default();
        assert_eq!(engine.budget_shards(1, auto).shards, 8);
        assert_eq!(engine.budget_shards(4, auto).shards, 2);
        assert_eq!(engine.budget_shards(16, auto).shards, 1);
        // Explicit shard counts pass through untouched.
        let pinned = AnalysisOptions {
            shards: 3,
            ..Default::default()
        };
        assert_eq!(engine.budget_shards(16, pinned).shards, 3);
    }
}
