//! Parallel cluster analysis engine.
//!
//! A cluster run produces one trace file per node, and each node's
//! load → decode → timeline → correlate pipeline is independent of every
//! other node's — embarrassingly parallel work the sequential CLI used to
//! do one file at a time. [`Engine`] fans the per-node pipelines out over
//! a work-stealing thread pool and returns results **in input order**, so
//! callers render reports and merge [`ClusterProfile`]s deterministically:
//! the output of an N-worker engine is byte-identical to a 1-worker run.
//!
//! [`ClusterProfile`]: crate::merge::ClusterProfile

use crate::parser::{analyze_trace_salvaged, AnalysisOptions};
use crate::profile::NodeProfile;
use rayon::prelude::*;
use tempest_probe::trace::Trace;

/// A configured degree of parallelism for per-node analysis.
pub struct Engine {
    pool: rayon::ThreadPool,
}

impl Engine {
    /// Build an engine fanning out to `jobs` workers; `0` means one per
    /// available CPU.
    pub fn new(jobs: usize) -> Engine {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("thread pool construction is infallible");
        Engine { pool }
    }

    /// The worker count this engine resolves to.
    pub fn width(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Parallel map preserving input order. The unit the engine schedules:
    /// per-node analyses, doctor triage, any independent per-file work.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.pool.install(|| items.into_par_iter().map(f).collect())
    }

    /// Run the full single-node pipeline (read file → decode → analyze)
    /// for each path concurrently. The result vector is parallel to
    /// `paths`; each failure carries a `"{path}: {cause}"` message exactly
    /// as the sequential loader produced, so error reporting is unchanged.
    ///
    /// Under `options.recover` each file is decoded with salvage and its
    /// losses flow into the profile's `DataQuality`; otherwise decoding
    /// and analysis are strict.
    pub fn analyze_files(
        &self,
        paths: &[String],
        options: AnalysisOptions,
    ) -> Vec<Result<NodeProfile, String>> {
        let paths: Vec<String> = paths.to_vec();
        self.map(paths, move |path| analyze_one(&path, options))
    }
}

/// One node's pipeline: read the whole file, decode (salvaging when
/// recovery is on), analyze.
fn analyze_one(path: &str, options: AnalysisOptions) -> Result<NodeProfile, String> {
    let (trace, salvage) = {
        let _stage = tempest_obs::stage("decode");
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        if options.recover {
            let (t, r) = Trace::decode_salvage(&bytes).map_err(|e| format!("{path}: {e}"))?;
            (t, Some(r))
        } else {
            (
                Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))?,
                None,
            )
        }
    };
    analyze_trace_salvaged(&trace, salvage.as_ref(), options).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_probe::event::{Event, ThreadId};
    use tempest_probe::func::{FunctionDef, FunctionId, ScopeKind};
    use tempest_probe::trace::{NodeMeta, SensorMeta};
    use tempest_sensors::{SensorId, SensorKind, SensorReading, Temperature};

    fn mini_trace(node_id: u32) -> Trace {
        let sec = 1_000_000_000u64;
        Trace {
            node: NodeMeta {
                node_id,
                hostname: format!("node{node_id}"),
                sensors: vec![SensorMeta {
                    id: SensorId(0),
                    label: "CPU0 die".into(),
                    kind: SensorKind::CpuCore,
                }],
            },
            functions: vec![FunctionDef {
                id: FunctionId(0),
                name: "main".into(),
                address: 0x400000,
                kind: ScopeKind::Function,
            }],
            events: vec![
                Event::enter(0, ThreadId(0), FunctionId(0)),
                Event::exit(10 * sec, ThreadId(0), FunctionId(0)),
            ],
            samples: (0..40)
                .map(|i| {
                    SensorReading::new(
                        SensorId(0),
                        i * 250_000_000,
                        Temperature::from_celsius(40.0 + node_id as f64),
                    )
                })
                .collect(),
        }
    }

    fn write_traces(tag: &str, n: u32) -> (std::path::PathBuf, Vec<String>) {
        let dir = std::env::temp_dir().join(format!("tempest-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = (0..n)
            .map(|i| {
                let p = dir.join(format!("node{i}.trace"));
                mini_trace(i).save(&p).unwrap();
                p.to_str().unwrap().to_string()
            })
            .collect();
        (dir, paths)
    }

    #[test]
    fn results_come_back_in_input_order() {
        let (dir, mut paths) = write_traces("order", 6);
        paths.reverse(); // input order 5,4,3,2,1,0
        let engine = Engine::new(4);
        let results = engine.analyze_files(&paths, AnalysisOptions::default());
        let ids: Vec<u32> = results
            .iter()
            .map(|r| r.as_ref().unwrap().node.node_id)
            .collect();
        assert_eq!(ids, vec![5, 4, 3, 2, 1, 0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_sequential() {
        let (dir, paths) = write_traces("match", 4);
        let seq = Engine::new(1).analyze_files(&paths, AnalysisOptions::default());
        let par = Engine::new(4).analyze_files(&paths, AnalysisOptions::default());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.node, b.node);
            assert_eq!(a.functions.len(), b.functions.len());
            for (fa, fb) in a.functions.iter().zip(&b.functions) {
                assert_eq!(fa.func, fb.func);
                assert_eq!(fa.inclusive_ns, fb.inclusive_ns);
                assert_eq!(fa.thermal, fb.thermal);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_error_carries_path_in_place() {
        let (dir, mut paths) = write_traces("err", 2);
        paths.insert(1, "/nonexistent/gone.trace".to_string());
        let results = Engine::new(2).analyze_files(&paths, AnalysisOptions::default());
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.starts_with("/nonexistent/gone.trace:"), "{err}");
        assert!(results[2].is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_salvages_truncated_member() {
        let (dir, paths) = write_traces("salvage", 1);
        let bytes = std::fs::read(&paths[0]).unwrap();
        let cut = dir.join("cut.trace");
        std::fs::write(&cut, &bytes[..bytes.len() * 6 / 10]).unwrap();
        let cut_s = cut.to_str().unwrap().to_string();

        // Strict: decode error mentions the path.
        let strict =
            Engine::new(2).analyze_files(std::slice::from_ref(&cut_s), AnalysisOptions::default());
        assert!(strict[0].is_err());

        // Recover: profile produced, losses recorded.
        let rec = Engine::new(2).analyze_files(&[cut_s], AnalysisOptions::recovering());
        let p = rec[0].as_ref().unwrap();
        assert!(!p.quality.is_pristine());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let engine = Engine::new(0);
        assert!(engine.width() >= 1);
    }
}
