//! Thermal phase segmentation — the §5 research direction.
//!
//! "We need to isolate performance characteristics at finer granularity
//! to see if we can identify specific traits in codes that lead to higher
//! thermals. These kinds of observations could lead to techniques that
//! encourage thermal aware code (or library) development."
//!
//! [`segment_phases`] splits a sensor's time series into warming, cooling
//! and steady phases; [`attribute_phases`] then names the function that
//! dominated each phase, yielding a per-function *thermal trait*: does
//! this code heat the machine, cool it, or hold it? The per-function
//! warming rates ([`function_traits`]) are the quantitative version.

use crate::timeline::Timeline;
use std::collections::HashMap;
use tempest_probe::func::FunctionId;
use tempest_sensors::{SensorId, SensorReading};

/// Thermal direction of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Temperature rising faster than the steady band.
    Warming,
    /// Temperature falling faster than the steady band.
    Cooling,
    /// Temperature within the steady band.
    Steady,
}

/// One contiguous stretch of consistent thermal trend.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPhase {
    /// Direction of the phase.
    pub trend: Trend,
    /// Start/end on the trace clock, ns.
    pub start_ns: u64,
    /// End of the phase, ns.
    pub end_ns: u64,
    /// Net temperature change over the phase, °F.
    pub delta_f: f64,
}

impl ThermalPhase {
    /// Phase length in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 / 1e9
    }

    /// Mean rate over the phase, °F/s.
    pub fn rate_f_per_s(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.delta_f / d
        } else {
            0.0
        }
    }
}

/// Segment one sensor's samples into phases.
///
/// A centred moving window of `window` samples smooths quantisation
/// steps; rates above `steady_band_f_per_s` (°F/s) in magnitude classify
/// as warming/cooling, inside as steady. Adjacent same-trend windows
/// merge.
pub fn segment_phases(
    samples: &[SensorReading],
    sensor: SensorId,
    window: usize,
    steady_band_f_per_s: f64,
) -> Vec<ThermalPhase> {
    let pts: Vec<(u64, f64)> = samples
        .iter()
        .filter(|s| s.sensor == sensor)
        .map(|s| (s.timestamp_ns, s.temperature.fahrenheit()))
        .collect();
    let w = window.max(2);
    if pts.len() < w + 1 {
        return Vec::new();
    }

    // Smoothed values.
    let smooth: Vec<(u64, f64)> = pts
        .windows(w)
        .map(|win| {
            let t = win[w / 2].0;
            let v = win.iter().map(|p| p.1).sum::<f64>() / w as f64;
            (t, v)
        })
        .collect();

    let classify = |a: (u64, f64), b: (u64, f64)| -> Trend {
        let dt = (b.0 - a.0) as f64 / 1e9;
        if dt <= 0.0 {
            return Trend::Steady;
        }
        let rate = (b.1 - a.1) / dt;
        if rate > steady_band_f_per_s {
            Trend::Warming
        } else if rate < -steady_band_f_per_s {
            Trend::Cooling
        } else {
            Trend::Steady
        }
    };

    let mut phases: Vec<ThermalPhase> = Vec::new();
    for pair in smooth.windows(2) {
        let trend = classify(pair[0], pair[1]);
        let delta = pair[1].1 - pair[0].1;
        match phases.last_mut() {
            Some(last) if last.trend == trend => {
                last.end_ns = pair[1].0;
                last.delta_f += delta;
            }
            _ => phases.push(ThermalPhase {
                trend,
                start_ns: pair[0].0,
                end_ns: pair[1].0,
                delta_f: delta,
            }),
        }
    }
    phases
}

/// For each phase, the function that held the CPU (innermost frame)
/// longest during it.
pub fn attribute_phases(
    phases: &[ThermalPhase],
    timeline: &Timeline,
) -> Vec<(ThermalPhase, Option<FunctionId>)> {
    phases
        .iter()
        .map(|phase| {
            let mut occupancy: HashMap<FunctionId, u64> = HashMap::new();
            for iv in &timeline.intervals {
                let lo = iv.start_ns.max(phase.start_ns);
                let hi = iv.end_ns.min(phase.end_ns);
                if hi > lo {
                    // Weight by depth so the innermost frame wins where
                    // frames overlap; exact innermost-occupancy would need
                    // a sweep, but depth-weighted overlap picks the same
                    // winner for well-nested code.
                    *occupancy.entry(iv.func).or_default() += (hi - lo) * (iv.depth as u64 + 1);
                }
            }
            let dominant = occupancy
                .into_iter()
                .max_by_key(|&(_, ns)| ns)
                .map(|(f, _)| f);
            (phase.clone(), dominant)
        })
        .collect()
}

/// A function's thermal trait: time-weighted mean warming rate of the
/// phases it dominated.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionTrait {
    /// The function the trait describes.
    pub func: FunctionId,
    /// Mean °F/s while this function dominated the machine.
    pub rate_f_per_s: f64,
    /// Seconds of phase time attributed.
    pub seconds: f64,
}

/// Aggregate phase attribution into per-function thermal traits, sorted
/// hottest-trait first.
pub fn function_traits(phases: &[ThermalPhase], timeline: &Timeline) -> Vec<FunctionTrait> {
    let mut acc: HashMap<FunctionId, (f64, f64)> = HashMap::new(); // (Σ delta, Σ secs)
    for (phase, func) in attribute_phases(phases, timeline) {
        if let Some(f) = func {
            let e = acc.entry(f).or_default();
            e.0 += phase.delta_f;
            e.1 += phase.duration_s();
        }
    }
    let mut traits: Vec<FunctionTrait> = acc
        .into_iter()
        .filter(|(_, (_, secs))| *secs > 0.0)
        .map(|(func, (delta, secs))| FunctionTrait {
            func,
            rate_f_per_s: delta / secs,
            seconds: secs,
        })
        .collect();
    // total_cmp keeps the sort panic-free if a rate degraded to NaN.
    traits.sort_by(|a, b| b.rate_f_per_s.total_cmp(&a.rate_f_per_s));
    traits
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_probe::event::{Event, ThreadId};
    use tempest_sensors::Temperature;

    const S0: SensorId = SensorId(0);
    const T0: ThreadId = ThreadId(0);
    const MAIN: FunctionId = FunctionId(0);
    const HOT: FunctionId = FunctionId(1);
    const COOL: FunctionId = FunctionId(2);

    /// 0–30 s warming 0.5 °C/s, 30–60 s cooling 0.25 °C/s, 4 Hz samples.
    fn ramp_samples() -> Vec<SensorReading> {
        (0..240)
            .map(|i| {
                let t_s = i as f64 * 0.25;
                let c = if t_s < 30.0 {
                    35.0 + 0.5 * t_s
                } else {
                    50.0 - 0.25 * (t_s - 30.0)
                };
                SensorReading::new(S0, (t_s * 1e9) as u64, Temperature::from_celsius(c))
            })
            .collect()
    }

    fn ramp_timeline() -> Timeline {
        // HOT runs 0..30 s, COOL runs 30..60 s, inside MAIN.
        Timeline::build(&[
            Event::enter(0, T0, MAIN),
            Event::enter(0, T0, HOT),
            Event::exit(30_000_000_000, T0, HOT),
            Event::enter(30_000_000_000, T0, COOL),
            Event::exit(60_000_000_000, T0, COOL),
            Event::exit(60_000_000_000, T0, MAIN),
        ])
    }

    #[test]
    fn segments_warming_then_cooling() {
        let phases = segment_phases(&ramp_samples(), S0, 4, 0.1);
        assert!(phases.len() >= 2, "got {phases:?}");
        assert_eq!(phases[0].trend, Trend::Warming);
        assert!(phases[0].delta_f > 20.0);
        let last = phases.last().unwrap();
        assert_eq!(last.trend, Trend::Cooling);
        assert!(last.delta_f < -5.0);
    }

    #[test]
    fn constant_series_is_one_steady_phase() {
        let samples: Vec<SensorReading> = (0..100)
            .map(|i| SensorReading::new(S0, i * 250_000_000, Temperature::from_celsius(40.0)))
            .collect();
        let phases = segment_phases(&samples, S0, 4, 0.1);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].trend, Trend::Steady);
        assert_eq!(phases[0].delta_f, 0.0);
    }

    #[test]
    fn too_few_samples_yield_nothing() {
        let samples: Vec<SensorReading> = (0..3)
            .map(|i| SensorReading::new(S0, i, Temperature::from_celsius(40.0)))
            .collect();
        assert!(segment_phases(&samples, S0, 4, 0.1).is_empty());
    }

    #[test]
    fn attribution_names_the_dominant_function() {
        let phases = segment_phases(&ramp_samples(), S0, 4, 0.1);
        let attributed = attribute_phases(&phases, &ramp_timeline());
        // The warming phase belongs to HOT, the cooling one to COOL.
        let warming = attributed
            .iter()
            .find(|(p, _)| p.trend == Trend::Warming)
            .unwrap();
        assert_eq!(warming.1, Some(HOT));
        let cooling = attributed
            .iter()
            .find(|(p, _)| p.trend == Trend::Cooling)
            .unwrap();
        assert_eq!(cooling.1, Some(COOL));
    }

    #[test]
    fn traits_rank_heater_above_cooler() {
        let phases = segment_phases(&ramp_samples(), S0, 4, 0.1);
        let traits = function_traits(&phases, &ramp_timeline());
        assert!(traits.len() >= 2);
        assert_eq!(traits[0].func, HOT);
        assert!(traits[0].rate_f_per_s > 0.5);
        let cool = traits.iter().find(|t| t.func == COOL).unwrap();
        assert!(cool.rate_f_per_s < 0.0);
    }

    #[test]
    fn phase_rate_math() {
        let p = ThermalPhase {
            trend: Trend::Warming,
            start_ns: 0,
            end_ns: 10_000_000_000,
            delta_f: 5.0,
        };
        assert!((p.duration_s() - 10.0).abs() < 1e-12);
        assert!((p.rate_f_per_s() - 0.5).abs() < 1e-12);
    }
}
