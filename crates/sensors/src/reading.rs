//! Timestamped sensor readings — the atoms of a thermal trace.

use crate::source::SensorId;
use crate::units::Temperature;

/// One sample of one sensor at one instant.
///
/// `tempd` produces a stream of these (four per second per sensor by
/// default); the Tempest parser later correlates them with the function
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Which sensor produced the reading.
    pub sensor: SensorId,
    /// Nanoseconds since the profiling session's epoch, on the same clock
    /// as the function entry/exit events.
    pub timestamp_ns: u64,
    /// The reported (possibly quantised, possibly noisy) temperature.
    pub temperature: Temperature,
}

impl SensorReading {
    /// Convenience constructor.
    pub fn new(sensor: SensorId, timestamp_ns: u64, temperature: Temperature) -> Self {
        SensorReading {
            sensor,
            timestamp_ns,
            temperature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_preserves_fields() {
        let r = SensorReading::new(SensorId(3), 250_000_000, Temperature::from_celsius(40.0));
        assert_eq!(r.sensor, SensorId(3));
        assert_eq!(r.timestamp_ns, 250_000_000);
        assert!((r.temperature.celsius() - 40.0).abs() < 1e-12);
    }
}
