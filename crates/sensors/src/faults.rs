//! Deterministic fault injection for sensor sources.
//!
//! Real lm-sensors deployments fail in characteristic ways the paper's
//! `tempd` had to survive: i2c reads time out intermittently, a sensor
//! freezes at its last value after a firmware hiccup, EMI produces
//! single-sample spikes or NaN garbage, a bus access stalls for tens of
//! milliseconds, and occasionally a sensor dies outright mid-run. This
//! module injects exactly those failure modes into any [`SensorSource`]
//! through the [`FaultySensorSource`] decorator, driven by a seeded
//! [`FaultPlan`] so every fault schedule is reproducible bit-for-bit.
//!
//! Faults manifest in the *output* of `sample_into` — dropped or dead
//! sensors simply produce no reading that round, stuck sensors repeat a
//! frozen value, spikes perturb or poison the temperature — so the
//! [`SensorSource`] contract is unchanged and every consumer (tempd, the
//! replay harness, tests) exercises its real degradation paths.

use crate::reading::SensorReading;
use crate::source::{SensorId, SensorInfo, SensorSource};
use crate::units::Temperature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One failure mode applied to one sensor.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Each read independently fails (no reading emitted) with this
    /// probability — models intermittent i2c/SMBus timeouts.
    Dropout {
        /// Per-round probability in `[0, 1]` that the read is lost.
        probability: f64,
    },
    /// From `from_ns` onward the sensor repeats the last value it reported
    /// before the fault engaged (or its first post-fault read if none) —
    /// models a wedged sensor controller.
    StuckAt {
        /// Timestamp at which the sensor freezes.
        from_ns: u64,
    },
    /// Each read is independently perturbed with this probability — models
    /// electrical noise. A spike adds `delta_celsius`; if `poison_nan` it
    /// instead reports NaN, which downstream consumers must filter.
    Spike {
        /// Per-round probability in `[0, 1]` of a perturbed read.
        probability: f64,
        /// Magnitude added to the true temperature on a spike.
        delta_celsius: f64,
        /// Report NaN instead of an offset value.
        poison_nan: bool,
    },
    /// Each read stalls for `delay` with this probability — models a bus
    /// stall. The delay is *recorded* in [`FaultStats`] and only actually
    /// slept when [`FaultPlan::real_delays`] is set, so tests stay fast.
    SlowRead {
        /// Per-round probability in `[0, 1]` of a stalled read.
        probability: f64,
        /// How long the stalled read takes.
        delay: Duration,
    },
    /// The sensor produces no readings at all from `from_ns` onward —
    /// models permanent sensor death.
    DeadAfter {
        /// Timestamp of death.
        from_ns: u64,
    },
}

/// A [`FaultKind`] bound to the sensor it afflicts.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorFault {
    /// The afflicted sensor.
    pub sensor: SensorId,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A reproducible schedule of sensor faults.
///
/// The same plan (same seed, same faults) applied to the same source
/// produces an identical corrupted stream, which is what lets the fault
/// matrix in `tests/fault_injection.rs` make exact assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-read probability draws.
    pub seed: u64,
    /// Faults to apply; multiple faults may target one sensor.
    pub faults: Vec<SensorFault>,
    /// Actually sleep on [`FaultKind::SlowRead`] stalls. Off by default so
    /// unit tests only account the virtual delay.
    pub real_delays: bool,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
            real_delays: false,
        }
    }

    /// Add an intermittent-dropout fault.
    pub fn dropout(mut self, sensor: SensorId, probability: f64) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::Dropout { probability },
        });
        self
    }

    /// Add a stuck-at fault engaging at `from_ns`.
    pub fn stuck_at(mut self, sensor: SensorId, from_ns: u64) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::StuckAt { from_ns },
        });
        self
    }

    /// Add an additive-spike fault.
    pub fn spike(mut self, sensor: SensorId, probability: f64, delta_celsius: f64) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::Spike {
                probability,
                delta_celsius,
                poison_nan: false,
            },
        });
        self
    }

    /// Add a NaN-poisoning fault.
    pub fn poison_nan(mut self, sensor: SensorId, probability: f64) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::Spike {
                probability,
                delta_celsius: 0.0,
                poison_nan: true,
            },
        });
        self
    }

    /// Add a slow-read fault.
    pub fn slow_read(mut self, sensor: SensorId, probability: f64, delay: Duration) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::SlowRead { probability, delay },
        });
        self
    }

    /// Add a permanent-death fault engaging at `from_ns`.
    pub fn dead_after(mut self, sensor: SensorId, from_ns: u64) -> Self {
        self.faults.push(SensorFault {
            sensor,
            kind: FaultKind::DeadAfter { from_ns },
        });
        self
    }
}

/// Counters describing what a [`FaultySensorSource`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Readings suppressed by [`FaultKind::Dropout`].
    pub dropouts: u64,
    /// Readings replaced by a frozen value.
    pub stuck_reads: u64,
    /// Readings perturbed by a finite spike.
    pub spikes: u64,
    /// Readings poisoned to NaN.
    pub nan_reads: u64,
    /// Readings that incurred a stall.
    pub slow_reads: u64,
    /// Total virtual stall time accumulated by slow reads.
    pub slow_read_ns: u64,
    /// Readings suppressed because the sensor was dead.
    pub dead_reads: u64,
}

impl FaultStats {
    /// Total readings suppressed (dropout + death).
    pub fn suppressed(&self) -> u64 {
        self.dropouts + self.dead_reads
    }

    /// Total readings whose value was corrupted (stuck + spike + NaN).
    pub fn corrupted(&self) -> u64 {
        self.stuck_reads + self.spikes + self.nan_reads
    }
}

/// Per-sensor mutable fault state.
#[derive(Debug, Clone, Default)]
struct SensorState {
    frozen: Option<Temperature>,
}

/// Decorator injecting a [`FaultPlan`] into an inner [`SensorSource`].
///
/// The decorated source still advertises the full sensor inventory via
/// [`SensorSource::sensors`] — exactly like real hardware, where a dead
/// sensor is still listed by lm-sensors but stops answering reads. Consumers
/// detect failures by diffing `sample_into` output against the inventory.
pub struct FaultySensorSource {
    inner: Box<dyn SensorSource>,
    plan: FaultPlan,
    rng: StdRng,
    states: Vec<SensorState>,
    stats: FaultStats,
    scratch: Vec<SensorReading>,
}

impl FaultySensorSource {
    /// Wrap `inner` with the fault schedule in `plan`.
    pub fn new(inner: Box<dyn SensorSource>, plan: FaultPlan) -> Self {
        let n = inner.sensors().len();
        FaultySensorSource {
            inner,
            rng: StdRng::seed_from_u64(plan.seed),
            states: vec![SensorState::default(); n],
            plan,
            stats: FaultStats::default(),
            scratch: Vec::new(),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan driving this source.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Apply every fault targeting `reading.sensor`. Returns `None` if the
    /// reading is suppressed, otherwise the (possibly mutated) reading.
    fn afflict(&mut self, mut reading: SensorReading) -> Option<SensorReading> {
        let idx = reading.sensor.0 as usize;
        for fault in &self.plan.faults {
            if fault.sensor != reading.sensor {
                continue;
            }
            match fault.kind {
                FaultKind::DeadAfter { from_ns } => {
                    if reading.timestamp_ns >= from_ns {
                        self.stats.dead_reads += 1;
                        return None;
                    }
                }
                FaultKind::Dropout { probability } => {
                    if self.rng.gen_bool(probability.clamp(0.0, 1.0)) {
                        self.stats.dropouts += 1;
                        return None;
                    }
                }
                FaultKind::StuckAt { from_ns } => {
                    if reading.timestamp_ns >= from_ns {
                        let state = &mut self.states[idx];
                        let frozen = *state.frozen.get_or_insert(reading.temperature);
                        if frozen != reading.temperature {
                            self.stats.stuck_reads += 1;
                        }
                        reading.temperature = frozen;
                    } else {
                        self.states[idx].frozen = Some(reading.temperature);
                    }
                }
                FaultKind::Spike {
                    probability,
                    delta_celsius,
                    poison_nan,
                } => {
                    if self.rng.gen_bool(probability.clamp(0.0, 1.0)) {
                        if poison_nan {
                            self.stats.nan_reads += 1;
                            reading.temperature = Temperature::from_celsius(f64::NAN);
                        } else {
                            self.stats.spikes += 1;
                            reading.temperature = Temperature::from_celsius(
                                reading.temperature.celsius() + delta_celsius,
                            );
                        }
                    }
                }
                FaultKind::SlowRead { probability, delay } => {
                    if self.rng.gen_bool(probability.clamp(0.0, 1.0)) {
                        self.stats.slow_reads += 1;
                        self.stats.slow_read_ns += delay.as_nanos() as u64;
                        if self.plan.real_delays {
                            std::thread::sleep(delay);
                        }
                    }
                }
            }
        }
        Some(reading)
    }
}

impl SensorSource for FaultySensorSource {
    fn sensors(&self) -> &[SensorInfo] {
        self.inner.sensors()
    }

    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.sample_into(timestamp_ns, &mut scratch);
        for reading in scratch.drain(..) {
            if let Some(r) = self.afflict(reading) {
                out.push(r);
            }
        }
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ConstantSource, SensorKind};

    fn three_sensor_source() -> Box<dyn SensorSource> {
        Box::new(ConstantSource::new(vec![
            (
                "cpu0".into(),
                SensorKind::CpuCore,
                Temperature::from_celsius(50.0),
            ),
            (
                "cpu1".into(),
                SensorKind::CpuCore,
                Temperature::from_celsius(55.0),
            ),
            (
                "amb".into(),
                SensorKind::Ambient,
                Temperature::from_celsius(25.0),
            ),
        ]))
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut faulty = FaultySensorSource::new(three_sensor_source(), FaultPlan::new(1));
        let out = faulty.sample_all(100);
        assert_eq!(out.len(), 3);
        assert_eq!(faulty.stats(), FaultStats::default());
    }

    #[test]
    fn dead_sensor_disappears_after_cutoff() {
        let plan = FaultPlan::new(2).dead_after(SensorId(1), 1_000);
        let mut faulty = FaultySensorSource::new(three_sensor_source(), plan);
        assert_eq!(faulty.sample_all(999).len(), 3);
        let after = faulty.sample_all(1_000);
        assert_eq!(after.len(), 2);
        assert!(after.iter().all(|r| r.sensor != SensorId(1)));
        assert_eq!(faulty.stats().dead_reads, 1);
        // Inventory still lists the dead sensor, like real lm-sensors.
        assert_eq!(faulty.sensor_count(), 3);
    }

    #[test]
    fn dropout_rate_is_roughly_honoured_and_deterministic() {
        let plan = FaultPlan::new(42).dropout(SensorId(0), 0.5);
        let mut a = FaultySensorSource::new(three_sensor_source(), plan.clone());
        let mut b = FaultySensorSource::new(three_sensor_source(), plan);
        let mut kept_a = 0;
        let mut kept_b = 0;
        for t in 0..1_000u64 {
            kept_a += a
                .sample_all(t)
                .iter()
                .filter(|r| r.sensor == SensorId(0))
                .count();
            kept_b += b
                .sample_all(t)
                .iter()
                .filter(|r| r.sensor == SensorId(0))
                .count();
        }
        assert_eq!(kept_a, kept_b, "same seed must drop the same reads");
        assert!((300..700).contains(&kept_a), "kept {kept_a} of 1000");
    }

    #[test]
    fn nan_poisoning_counts_reads() {
        let plan = FaultPlan::new(7).poison_nan(SensorId(2), 1.0);
        let mut faulty = FaultySensorSource::new(three_sensor_source(), plan);
        let out = faulty.sample_all(5);
        let amb = out.iter().find(|r| r.sensor == SensorId(2)).unwrap();
        assert!(amb.temperature.celsius().is_nan());
        assert_eq!(faulty.stats().nan_reads, 1);
    }

    #[test]
    fn spike_offsets_value() {
        let plan = FaultPlan::new(7).spike(SensorId(0), 1.0, 40.0);
        let mut faulty = FaultySensorSource::new(three_sensor_source(), plan);
        let out = faulty.sample_all(5);
        let cpu = out.iter().find(|r| r.sensor == SensorId(0)).unwrap();
        assert!((cpu.temperature.celsius() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn slow_read_accrues_virtual_delay_without_sleeping() {
        let plan = FaultPlan::new(3).slow_read(SensorId(0), 1.0, Duration::from_millis(50));
        let mut faulty = FaultySensorSource::new(three_sensor_source(), plan);
        let start = std::time::Instant::now();
        for t in 0..10u64 {
            faulty.sample_all(t);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        let stats = faulty.stats();
        assert_eq!(stats.slow_reads, 10);
        assert_eq!(stats.slow_read_ns, 10 * 50_000_000);
    }

    #[test]
    fn stuck_sensor_freezes_at_pre_fault_value() {
        // A source whose value changes every sample, so freezing is visible.
        struct Ramp {
            infos: Vec<SensorInfo>,
        }
        impl SensorSource for Ramp {
            fn sensors(&self) -> &[SensorInfo] {
                &self.infos
            }
            fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
                out.push(SensorReading::new(
                    SensorId(0),
                    timestamp_ns,
                    Temperature::from_celsius(timestamp_ns as f64),
                ));
            }
        }
        let src = Box::new(Ramp {
            infos: vec![SensorInfo::new(0, "ramp", SensorKind::CpuCore)],
        });
        let plan = FaultPlan::new(1).stuck_at(SensorId(0), 5);
        let mut faulty = FaultySensorSource::new(src, plan);
        let temps: Vec<f64> = (0..10u64)
            .map(|t| faulty.sample_all(t)[0].temperature.celsius())
            .collect();
        assert_eq!(&temps[..5], &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(temps[5..].iter().all(|&c| c == 4.0), "frozen at last good");
        assert_eq!(faulty.stats().stuck_reads, 5);
    }

    #[test]
    fn multiple_faults_compose() {
        let plan = FaultPlan::new(9)
            .dead_after(SensorId(0), 500)
            .poison_nan(SensorId(1), 1.0)
            .dropout(SensorId(2), 1.0);
        let mut faulty = FaultySensorSource::new(three_sensor_source(), plan);
        let out = faulty.sample_all(1_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sensor, SensorId(1));
        assert!(out[0].temperature.celsius().is_nan());
        let stats = faulty.stats();
        assert_eq!(stats.suppressed(), 2);
        assert_eq!(stats.corrupted(), 1);
    }
}
