//! Dynamic voltage and frequency scaling model.
//!
//! §4.1: the paper *disables* DVFS for its experiments ("this effectively
//! sets the CPU to its highest frequency"), so the default governor here is
//! [`Governor::Performance`]. The thermal-feedback governor is implemented
//! so the thermal-optimisation experiment (E12) can demonstrate what the
//! paper's future work proposes: using Tempest data to drive management
//! decisions.

/// One frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// Core frequency in MHz.
    pub freq_mhz: f64,
    /// Core voltage in volts.
    pub volts: f64,
}

impl PState {
    /// Dynamic power scale relative to a nominal P-state: `(f/f0)·(V/V0)²`.
    pub fn dynamic_scale(self, nominal: PState) -> f64 {
        (self.freq_mhz / nominal.freq_mhz) * (self.volts / nominal.volts).powi(2)
    }

    /// Static/leakage power scale relative to nominal: `V/V0`.
    pub fn static_scale(self, nominal: PState) -> f64 {
        self.volts / nominal.volts
    }

    /// Performance scale relative to nominal (execution-time multiplier is
    /// the inverse of this).
    pub fn perf_scale(self, nominal: PState) -> f64 {
        self.freq_mhz / nominal.freq_mhz
    }
}

/// The P-state table of the paper's 1.8 GHz Opteron nodes.
pub fn opteron_pstates() -> Vec<PState> {
    vec![
        PState {
            freq_mhz: 1000.0,
            volts: 1.10,
        },
        PState {
            freq_mhz: 1400.0,
            volts: 1.20,
        },
        PState {
            freq_mhz: 1800.0,
            volts: 1.35,
        },
    ]
}

/// DVFS policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Governor {
    /// Always the highest P-state — the paper's experimental setting.
    Performance,
    /// Always the lowest P-state.
    Powersave,
    /// Drop one P-state when the observed temperature exceeds `trip_c`,
    /// return to max when it falls below `trip_c - hysteresis_c`.
    ThermalThrottle {
        /// Temperature above which the governor steps a P-state down, °C.
        trip_c: f64,
        /// Recovery band below the trip point before stepping back up, °C.
        hysteresis_c: f64,
    },
}

/// A per-socket DVFS controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Dvfs {
    states: Vec<PState>,
    governor: Governor,
    current: usize,
}

impl Dvfs {
    /// Build a controller; `states` must be sorted by ascending frequency.
    pub fn new(states: Vec<PState>, governor: Governor) -> Self {
        assert!(!states.is_empty());
        assert!(
            states.windows(2).all(|w| w[0].freq_mhz <= w[1].freq_mhz),
            "P-states must be sorted by frequency"
        );
        let current = match governor {
            Governor::Powersave => 0,
            _ => states.len() - 1,
        };
        Dvfs {
            states,
            governor,
            current,
        }
    }

    /// The paper's configuration: Opteron table, performance governor.
    pub fn disabled_opteron() -> Self {
        Dvfs::new(opteron_pstates(), Governor::Performance)
    }

    /// Current operating point.
    pub fn state(&self) -> PState {
        self.states[self.current]
    }

    /// Highest operating point (the nominal reference).
    pub fn nominal(&self) -> PState {
        *self.states.last().unwrap()
    }

    /// Index of the current P-state.
    pub fn state_index(&self) -> usize {
        self.current
    }

    /// Update the governor with an observed temperature; returns `true` if
    /// the P-state changed.
    pub fn update(&mut self, observed_c: f64) -> bool {
        let prev = self.current;
        match self.governor {
            Governor::Performance => self.current = self.states.len() - 1,
            Governor::Powersave => self.current = 0,
            Governor::ThermalThrottle {
                trip_c,
                hysteresis_c,
            } => {
                if observed_c > trip_c && self.current > 0 {
                    self.current -= 1;
                } else if observed_c < trip_c - hysteresis_c && self.current < self.states.len() - 1
                {
                    self.current += 1;
                }
            }
        }
        self.current != prev
    }

    /// Dynamic power multiplier at the current state.
    pub fn dynamic_scale(&self) -> f64 {
        self.state().dynamic_scale(self.nominal())
    }

    /// Static power multiplier at the current state.
    pub fn static_scale(&self) -> f64 {
        self.state().static_scale(self.nominal())
    }

    /// Performance multiplier at the current state (≤ 1.0).
    pub fn perf_scale(&self) -> f64 {
        self.state().perf_scale(self.nominal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_governor_pins_top_state() {
        let mut d = Dvfs::disabled_opteron();
        assert_eq!(d.state().freq_mhz, 1800.0);
        assert!(!d.update(95.0)); // stays at top even when hot
        assert_eq!(d.state().freq_mhz, 1800.0);
        assert!((d.dynamic_scale() - 1.0).abs() < 1e-12);
        assert!((d.perf_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn powersave_pins_bottom_state() {
        let d = Dvfs::new(opteron_pstates(), Governor::Powersave);
        assert_eq!(d.state().freq_mhz, 1000.0);
        assert!(d.dynamic_scale() < 1.0);
    }

    #[test]
    fn throttle_steps_down_when_hot_and_recovers() {
        let mut d = Dvfs::new(
            opteron_pstates(),
            Governor::ThermalThrottle {
                trip_c: 70.0,
                hysteresis_c: 5.0,
            },
        );
        assert_eq!(d.state().freq_mhz, 1800.0);
        assert!(d.update(75.0));
        assert_eq!(d.state().freq_mhz, 1400.0);
        assert!(d.update(75.0));
        assert_eq!(d.state().freq_mhz, 1000.0);
        assert!(!d.update(75.0)); // floor
                                  // Inside hysteresis band: hold.
        assert!(!d.update(67.0));
        // Below band: step back up.
        assert!(d.update(60.0));
        assert_eq!(d.state().freq_mhz, 1400.0);
    }

    #[test]
    fn dynamic_scale_follows_fv2() {
        let states = opteron_pstates();
        let lo = states[0];
        let hi = states[2];
        let expect = (1000.0 / 1800.0) * (1.10f64 / 1.35).powi(2);
        assert!((lo.dynamic_scale(hi) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_states_rejected() {
        Dvfs::new(
            vec![
                PState {
                    freq_mhz: 1800.0,
                    volts: 1.35,
                },
                PState {
                    freq_mhz: 1000.0,
                    volts: 1.10,
                },
            ],
            Governor::Performance,
        );
    }
}
