//! Replay recorded sensor logs as a live source.
//!
//! [`ReplaySource`] turns a previously recorded sample log (e.g. a real
//! machine's hwmon readings exported to CSV) back into a
//! [`SensorSource`], so archived thermal data can be pushed through the
//! whole Tempest pipeline — the "profile once, analyse anywhere" use the
//! paper's portability goal implies. Each `sample_into` call reports the
//! recorded values at or before the *requested* timestamp (zero-order
//! hold), so replay timing does not need to match recording timing.

use crate::reading::SensorReading;
use crate::source::{SensorInfo, SensorKind, SensorSource};
use crate::units::Temperature;

/// A sensor source backed by a recorded sample log.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    infos: Vec<SensorInfo>,
    /// Per sensor: (timestamp_ns, °C), sorted by timestamp.
    tracks: Vec<Vec<(u64, f64)>>,
    /// Per sensor: cursor over its track.
    cursors: Vec<usize>,
}

impl ReplaySource {
    /// Build from recorded readings and their sensor inventory. Readings
    /// for unknown sensor ids are dropped.
    pub fn new(infos: Vec<SensorInfo>, mut readings: Vec<SensorReading>) -> Self {
        readings.sort_by_key(|r| r.timestamp_ns);
        let mut tracks = vec![Vec::new(); infos.len()];
        for r in readings {
            if let Some(track) = tracks.get_mut(r.sensor.0 as usize) {
                track.push((r.timestamp_ns, r.temperature.celsius()));
            }
        }
        let cursors = vec![0; infos.len()];
        ReplaySource {
            infos,
            tracks,
            cursors,
        }
    }

    /// Parse a simple CSV log: header `timestamp_ns,<label1>,<label2>,…`
    /// then one row per sampling round with temperatures in °C. All
    /// sensors get [`SensorKind::Other`] unless the label contains "cpu"
    /// or "core"/"die" (CPU) or "ambient" (ambient).
    pub fn from_csv(text: &str) -> Result<ReplaySource, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty log")?;
        let cols: Vec<&str> = header.split(',').collect();
        if cols.len() < 2 || cols[0] != "timestamp_ns" {
            return Err("header must be `timestamp_ns,<labels…>`".to_string());
        }
        let infos: Vec<SensorInfo> = cols[1..]
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let lower = label.to_lowercase();
                let kind =
                    if lower.contains("core") || lower.contains("die") || lower.contains("cpu") {
                        SensorKind::CpuCore
                    } else if lower.contains("ambient") {
                        SensorKind::Ambient
                    } else {
                        SensorKind::Other
                    };
                SensorInfo::new(i as u16, label.trim(), kind)
            })
            .collect();
        let mut readings = Vec::new();
        for (ln, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != cols.len() {
                return Err(format!(
                    "row {}: {} fields, expected {}",
                    ln + 2,
                    fields.len(),
                    cols.len()
                ));
            }
            let ts: u64 = fields[0]
                .trim()
                .parse()
                .map_err(|_| format!("row {}: bad timestamp", ln + 2))?;
            for (i, f) in fields[1..].iter().enumerate() {
                let c: f64 = f
                    .trim()
                    .parse()
                    .map_err(|_| format!("row {}: bad temperature", ln + 2))?;
                readings.push(SensorReading::new(
                    crate::SensorId(i as u16),
                    ts,
                    Temperature::from_celsius(c),
                ));
            }
        }
        Ok(ReplaySource::new(infos, readings))
    }

    /// Recorded span, ns (0 if empty).
    pub fn span_ns(&self) -> u64 {
        let lo = self
            .tracks
            .iter()
            .filter_map(|t| t.first().map(|p| p.0))
            .min();
        let hi = self
            .tracks
            .iter()
            .filter_map(|t| t.last().map(|p| p.0))
            .max();
        match (lo, hi) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }
}

impl SensorSource for ReplaySource {
    fn sensors(&self) -> &[SensorInfo] {
        &self.infos
    }

    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
        for (i, info) in self.infos.iter().enumerate() {
            let track = &self.tracks[i];
            if track.is_empty() {
                continue;
            }
            // Advance the cursor to the last recorded point ≤ timestamp.
            let cur = &mut self.cursors[i];
            while *cur + 1 < track.len() && track[*cur + 1].0 <= timestamp_ns {
                *cur += 1;
            }
            // Before the first record: hold the first value.
            let (_, c) = track[*cur];
            out.push(SensorReading::new(
                info.id,
                timestamp_ns,
                Temperature::from_celsius(c),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensorId;

    fn source() -> ReplaySource {
        let infos = vec![
            SensorInfo::new(0, "cpu die", SensorKind::CpuCore),
            SensorInfo::new(1, "ambient", SensorKind::Ambient),
        ];
        let readings = vec![
            SensorReading::new(SensorId(0), 0, Temperature::from_celsius(40.0)),
            SensorReading::new(SensorId(1), 0, Temperature::from_celsius(25.0)),
            SensorReading::new(SensorId(0), 1_000, Temperature::from_celsius(42.0)),
            SensorReading::new(SensorId(1), 1_000, Temperature::from_celsius(25.5)),
            SensorReading::new(SensorId(0), 2_000, Temperature::from_celsius(44.0)),
        ];
        ReplaySource::new(infos, readings)
    }

    #[test]
    fn zero_order_hold_at_requested_times() {
        let mut s = source();
        let r = s.sample_all(500);
        assert!((r[0].temperature.celsius() - 40.0).abs() < 1e-9);
        let r = s.sample_all(1_500);
        assert!((r[0].temperature.celsius() - 42.0).abs() < 1e-9);
        let r = s.sample_all(10_000);
        assert!(
            (r[0].temperature.celsius() - 44.0).abs() < 1e-9,
            "holds last"
        );
        assert!((r[1].temperature.celsius() - 25.5).abs() < 1e-9);
    }

    #[test]
    fn requested_timestamp_is_reported() {
        let mut s = source();
        let r = s.sample_all(777);
        assert!(r.iter().all(|x| x.timestamp_ns == 777));
    }

    #[test]
    fn cursors_only_move_forward() {
        let mut s = source();
        s.sample_all(2_000);
        // Asking for an earlier time after advancing holds the cursor
        // (zero-order hold is monotone by design — tempd asks in order).
        let r = s.sample_all(0);
        assert!((r[0].temperature.celsius() - 44.0).abs() < 1e-9);
    }

    #[test]
    fn csv_roundtrip() {
        let csv = "timestamp_ns,cpu die,ambient\n0,40.0,25.0\n250000000,41.0,25.1\n";
        let mut s = ReplaySource::from_csv(csv).unwrap();
        assert_eq!(s.sensor_count(), 2);
        assert_eq!(s.sensors()[0].kind, SensorKind::CpuCore);
        assert_eq!(s.sensors()[1].kind, SensorKind::Ambient);
        assert_eq!(s.span_ns(), 250_000_000);
        let r = s.sample_all(250_000_000);
        assert!((r[0].temperature.celsius() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn csv_errors_are_reported() {
        assert!(ReplaySource::from_csv("").is_err());
        assert!(ReplaySource::from_csv("time,cpu\n0,40\n").is_err());
        assert!(ReplaySource::from_csv("timestamp_ns,cpu\n0\n").is_err());
        assert!(ReplaySource::from_csv("timestamp_ns,cpu\nx,40\n").is_err());
        assert!(ReplaySource::from_csv("timestamp_ns,cpu\n0,hot\n").is_err());
    }

    #[test]
    fn empty_tracks_are_skipped() {
        let infos = vec![
            SensorInfo::new(0, "a", SensorKind::CpuCore),
            SensorInfo::new(1, "b", SensorKind::Other),
        ];
        let readings = vec![SensorReading::new(
            SensorId(0),
            0,
            Temperature::from_celsius(40.0),
        )];
        let mut s = ReplaySource::new(infos, readings);
        let r = s.sample_all(0);
        assert_eq!(r.len(), 1, "sensor without data reports nothing");
    }
}
