//! Fan model.
//!
//! §4.1 of the paper: *"we disabled DVFS and auto fan speed regulation …
//! sets the fan speed to a constant high speed (e.g. 3000 RPMs)"*. The fan
//! model therefore defaults to a fixed RPM, but also implements the
//! thermostat controller the paper disabled, so the feedback ablation
//! (experiment E12/E15 extensions) can turn it back on.

/// Fan operating policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FanPolicy {
    /// Constant speed — the paper's experimental configuration.
    Fixed {
        /// The pinned speed, RPM.
        rpm: f64,
    },
    /// Proportional thermostat: below `low_c` run at `min_rpm`, above
    /// `high_c` run at `max_rpm`, linear in between. This is the "auto fan
    /// speed regulation" the paper disables to avoid feedback effects.
    Thermostat {
        /// Below this temperature the fan runs at `min_rpm`, °C.
        low_c: f64,
        /// Above this temperature the fan runs at `max_rpm`, °C.
        high_c: f64,
        /// Speed at or below `low_c`, RPM.
        min_rpm: f64,
        /// Speed at or above `high_c`, RPM.
        max_rpm: f64,
    },
}

/// A chassis/CPU fan. Airflow reduces the exhaust thermal resistance of the
/// node's [`crate::rc_model::ThermalStack`].
#[derive(Debug, Clone, PartialEq)]
pub struct Fan {
    /// Active policy.
    pub policy: FanPolicy,
    /// RPM at which the nominal thermal resistance is calibrated.
    pub nominal_rpm: f64,
    current_rpm: f64,
}

impl Fan {
    /// The paper's configuration: constant 3000 RPM.
    pub fn fixed_high() -> Self {
        Fan::new(FanPolicy::Fixed { rpm: 3000.0 }, 3000.0)
    }

    /// Create a fan with the given policy, calibrated at `nominal_rpm`.
    pub fn new(policy: FanPolicy, nominal_rpm: f64) -> Self {
        assert!(nominal_rpm > 0.0);
        let current_rpm = match policy {
            FanPolicy::Fixed { rpm } => rpm,
            FanPolicy::Thermostat { min_rpm, .. } => min_rpm,
        };
        Fan {
            policy,
            nominal_rpm,
            current_rpm,
        }
    }

    /// Current speed in RPM.
    pub fn rpm(&self) -> f64 {
        self.current_rpm
    }

    /// Update fan speed given the temperature the controller observes.
    pub fn update(&mut self, observed_c: f64) {
        self.current_rpm = match self.policy {
            FanPolicy::Fixed { rpm } => rpm,
            FanPolicy::Thermostat {
                low_c,
                high_c,
                min_rpm,
                max_rpm,
            } => {
                if observed_c <= low_c {
                    min_rpm
                } else if observed_c >= high_c {
                    max_rpm
                } else {
                    let t = (observed_c - low_c) / (high_c - low_c);
                    min_rpm + t * (max_rpm - min_rpm)
                }
            }
        };
    }

    /// Multiplier on the exhaust thermal resistance relative to nominal.
    ///
    /// Convective resistance falls roughly with the square root of airflow
    /// for the laminar-ish regime of chassis fans; we use
    /// `(nominal/current)^0.6`, clamped so a stalled fan does not produce
    /// infinite resistance.
    pub fn resistance_factor(&self) -> f64 {
        let ratio = self.nominal_rpm / self.current_rpm.max(1.0);
        ratio.powf(0.6).clamp(0.2, 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fan_ignores_temperature() {
        let mut f = Fan::fixed_high();
        f.update(30.0);
        assert_eq!(f.rpm(), 3000.0);
        f.update(90.0);
        assert_eq!(f.rpm(), 3000.0);
        assert!((f.resistance_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thermostat_interpolates() {
        let mut f = Fan::new(
            FanPolicy::Thermostat {
                low_c: 40.0,
                high_c: 70.0,
                min_rpm: 1000.0,
                max_rpm: 3000.0,
            },
            3000.0,
        );
        f.update(30.0);
        assert_eq!(f.rpm(), 1000.0);
        f.update(55.0);
        assert!((f.rpm() - 2000.0).abs() < 1e-9);
        f.update(80.0);
        assert_eq!(f.rpm(), 3000.0);
    }

    #[test]
    fn slower_fan_raises_resistance() {
        let mut f = Fan::new(
            FanPolicy::Thermostat {
                low_c: 40.0,
                high_c: 70.0,
                min_rpm: 1500.0,
                max_rpm: 3000.0,
            },
            3000.0,
        );
        f.update(30.0); // min speed
        let slow = f.resistance_factor();
        f.update(90.0); // max speed
        let fast = f.resistance_factor();
        assert!(slow > fast);
        assert!((fast - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resistance_factor_clamped_for_stalled_fan() {
        let f = Fan::new(FanPolicy::Fixed { rpm: 0.0 }, 3000.0);
        assert!(f.resistance_factor() <= 5.0);
    }
}
