//! Real hardware sensor reader for Linux.
//!
//! This is the lm-sensors equivalent: it enumerates `/sys/class/hwmon/*`
//! (`tempN_input` files in millidegrees Celsius, with optional
//! `tempN_label`) and `/sys/class/thermal/thermal_zone*` and exposes them
//! through [`SensorSource`]. The paper's statement "Tempest will run on any
//! Linux-based system that has support for the LM sensors package" maps to:
//! this source works wherever the kernel exposes hwmon, and the simulated
//! bank covers everywhere else.
//!
//! On machines without sensors (containers, VMs) discovery simply returns
//! an empty source; callers fall back to [`crate::sim::SimulatedSensorBank`].

use crate::reading::SensorReading;
use crate::source::{SensorInfo, SensorKind, SensorSource};
use crate::units::Temperature;
use std::fs;
use std::path::{Path, PathBuf};

/// A discovered sysfs temperature input.
#[derive(Debug, Clone)]
struct HwmonChannel {
    /// Path of the `temp*_input` (or `thermal_zone*/temp`) file.
    input: PathBuf,
    /// Last good reading, reported if a transient read error occurs
    /// (sensors are "at times unstable", §4.1).
    last_good: Option<Temperature>,
}

/// Reader over every hwmon/thermal-zone temperature the kernel exposes.
#[derive(Debug, Clone)]
pub struct HwmonSource {
    infos: Vec<SensorInfo>,
    channels: Vec<HwmonChannel>,
}

impl HwmonSource {
    /// Discover sensors under the standard sysfs roots.
    pub fn discover() -> Self {
        Self::discover_at(
            Path::new("/sys/class/hwmon"),
            Path::new("/sys/class/thermal"),
        )
    }

    /// Discovery with explicit roots — used by tests with a fake sysfs tree.
    pub fn discover_at(hwmon_root: &Path, thermal_root: &Path) -> Self {
        let mut infos = Vec::new();
        let mut channels = Vec::new();

        let mut add = |label: String, kind: SensorKind, input: PathBuf| {
            infos.push(SensorInfo::new(infos.len() as u16, label, kind));
            channels.push(HwmonChannel {
                input,
                last_good: None,
            });
        };

        // /sys/class/hwmon/hwmonN/temp*_input
        if let Ok(entries) = fs::read_dir(hwmon_root) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                let chip = fs::read_to_string(dir.join("name"))
                    .map(|s| s.trim().to_string())
                    .unwrap_or_else(|_| "hwmon".to_string());
                let mut inputs: Vec<_> = fs::read_dir(&dir)
                    .into_iter()
                    .flatten()
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .map(|n| n.starts_with("temp") && n.ends_with("_input"))
                            .unwrap_or(false)
                    })
                    .collect();
                inputs.sort();
                for input in inputs {
                    // A malformed (non-UTF-8) file name yields no stem:
                    // skip that channel instead of panicking mid-discovery.
                    let Some(stem) = input
                        .file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.trim_end_matches("_input").to_string())
                    else {
                        continue;
                    };
                    let label = fs::read_to_string(dir.join(format!("{stem}_label")))
                        .map(|s| s.trim().to_string())
                        .unwrap_or_else(|_| stem.clone());
                    let kind = classify(&chip, &label);
                    add(format!("{chip}: {label}"), kind, input);
                }
            }
        }

        // /sys/class/thermal/thermal_zone*/temp
        if let Ok(entries) = fs::read_dir(thermal_root) {
            let mut dirs: Vec<_> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.starts_with("thermal_zone"))
                        .unwrap_or(false)
                })
                .collect();
            dirs.sort();
            for dir in dirs {
                let zone_type = fs::read_to_string(dir.join("type"))
                    .map(|s| s.trim().to_string())
                    .unwrap_or_else(|_| "zone".to_string());
                let kind = classify(&zone_type, &zone_type);
                add(format!("thermal: {zone_type}"), kind, dir.join("temp"));
            }
        }

        HwmonSource { infos, channels }
    }

    /// True if discovery found at least one sensor.
    pub fn is_available(&self) -> bool {
        !self.infos.is_empty()
    }
}

/// Guess a sensor kind from chip and channel labels, the way lm-sensors
/// users eyeball `sensors` output.
fn classify(chip: &str, label: &str) -> SensorKind {
    let hay = format!("{} {}", chip.to_lowercase(), label.to_lowercase());
    if hay.contains("core") || hay.contains("tdie") || hay.contains("tctl") {
        SensorKind::CpuCore
    } else if hay.contains("cpu") || hay.contains("package") || hay.contains("x86_pkg") {
        SensorKind::CpuPackage
    } else if hay.contains("ambient") || hay.contains("chassis") || hay.contains("sys") {
        SensorKind::Ambient
    } else if hay.contains("board") || hay.contains("acpitz") || hay.contains("pch") {
        SensorKind::Motherboard
    } else if hay.contains("dimm") || hay.contains("mem") {
        SensorKind::Memory
    } else {
        SensorKind::Other
    }
}

impl SensorSource for HwmonSource {
    fn sensors(&self) -> &[SensorInfo] {
        &self.infos
    }

    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
        for (info, chan) in self.infos.iter().zip(self.channels.iter_mut()) {
            let value = fs::read_to_string(&chan.input)
                .ok()
                .and_then(|s| s.trim().parse::<i64>().ok())
                .map(Temperature::from_millicelsius)
                .filter(|t| t.is_physical());
            match value {
                Some(t) => {
                    chan.last_good = Some(t);
                    out.push(SensorReading::new(info.id, timestamp_ns, t));
                }
                None => {
                    // Transient read failure: hold the last good value so
                    // the sampling cadence stays regular.
                    if let Some(t) = chan.last_good {
                        out.push(SensorReading::new(info.id, timestamp_ns, t));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn fake_sysfs() -> (tempdir::TempDirGuard, HwmonSource) {
        let root = tempdir::make("tempest-hwmon-test");
        let hw = root.path.join("hwmon");
        let tz = root.path.join("thermal");
        fs::create_dir_all(hw.join("hwmon0")).unwrap();
        fs::create_dir_all(tz.join("thermal_zone0")).unwrap();
        fs::write(hw.join("hwmon0/name"), "k8temp\n").unwrap();
        fs::write(hw.join("hwmon0/temp1_input"), "40500\n").unwrap();
        fs::write(hw.join("hwmon0/temp1_label"), "Core 0\n").unwrap();
        fs::write(hw.join("hwmon0/temp2_input"), "39000\n").unwrap();
        fs::write(tz.join("thermal_zone0/type"), "acpitz\n").unwrap();
        fs::write(tz.join("thermal_zone0/temp"), "31000\n").unwrap();
        let src = HwmonSource::discover_at(&hw, &tz);
        (root, src)
    }

    /// Minimal temp-dir helper so the crate has no dev-dependency on a
    /// tempdir crate.
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static N: AtomicU64 = AtomicU64::new(0);

        pub struct TempDirGuard {
            pub path: PathBuf,
        }

        impl Drop for TempDirGuard {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }

        pub fn make(prefix: &str) -> TempDirGuard {
            let n = N.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).unwrap();
            TempDirGuard { path }
        }
    }

    #[test]
    fn discovers_hwmon_and_thermal_zones() {
        let (_g, src) = fake_sysfs();
        assert!(src.is_available());
        assert_eq!(src.sensor_count(), 3);
        assert_eq!(src.sensors()[0].label, "k8temp: Core 0");
        assert_eq!(src.sensors()[0].kind, SensorKind::CpuCore);
        assert_eq!(src.sensors()[2].kind, SensorKind::Motherboard); // acpitz
    }

    #[test]
    fn reads_millicelsius_values() {
        let (_g, mut src) = fake_sysfs();
        let r = src.sample_all(5);
        assert_eq!(r.len(), 3);
        assert!((r[0].temperature.celsius() - 40.5).abs() < 1e-9);
        assert!((r[2].temperature.celsius() - 31.0).abs() < 1e-9);
        assert!(r.iter().all(|x| x.timestamp_ns == 5));
    }

    #[test]
    fn holds_last_good_value_on_read_failure() {
        let (g, mut src) = fake_sysfs();
        let first = src.sample_all(0);
        assert_eq!(first.len(), 3);
        // Corrupt one input file.
        fs::write(g.path.join("hwmon/hwmon0/temp1_input"), "garbage\n").unwrap();
        let second = src.sample_all(1);
        assert_eq!(second.len(), 3, "held value keeps cadence");
        assert_eq!(second[0].temperature, first[0].temperature);
    }

    #[test]
    fn malformed_sensor_file_names_are_skipped_not_panicked() {
        use std::ffi::OsStr;
        use std::os::unix::ffi::OsStrExt;
        let (g, _) = fake_sysfs();
        // A temp*_input whose name is not valid UTF-8 must be skipped.
        let bad = g
            .path
            .join("hwmon/hwmon0")
            .join(OsStr::from_bytes(b"temp\xff9_input"));
        fs::write(&bad, "55000\n").unwrap();
        // And a temp*_input that is a directory (unreadable as a sensor)
        // must not break sampling for its siblings.
        fs::create_dir_all(g.path.join("hwmon/hwmon0/temp8_input")).unwrap();
        let mut src = HwmonSource::discover_at(&g.path.join("hwmon"), &g.path.join("thermal"));
        let readings = src.sample_all(0);
        // 3 good channels from fake_sysfs; the directory one is discovered
        // but produces no reading; the non-UTF-8 one is skipped entirely.
        assert_eq!(readings.len(), 3);
        assert!(
            src.sensors().iter().all(|s| !s.label.contains('\u{fffd}')),
            "no mojibake labels"
        );
    }

    #[test]
    fn missing_roots_yield_empty_source() {
        let src = HwmonSource::discover_at(
            Path::new("/nonexistent/hwmon"),
            Path::new("/nonexistent/thermal"),
        );
        assert!(!src.is_available());
        assert_eq!(src.sensor_count(), 0);
    }

    #[test]
    fn classification_heuristics() {
        assert_eq!(classify("k10temp", "Tdie"), SensorKind::CpuCore);
        assert_eq!(classify("coretemp", "Package id 0"), SensorKind::CpuCore); // "core" wins
        assert_eq!(classify("x86_pkg_temp", "t"), SensorKind::CpuPackage);
        assert_eq!(classify("w83627", "SYS Temp"), SensorKind::Ambient);
        assert_eq!(classify("spd5118", "DIMM 0"), SensorKind::Memory);
        assert_eq!(classify("weird", "xyz"), SensorKind::Other);
    }

    #[test]
    fn discovery_on_real_machine_does_not_panic() {
        // Whatever this host exposes (possibly nothing in a container),
        // discovery and sampling must be safe.
        let mut src = HwmonSource::discover();
        let _ = src.sample_all(0);
    }
}
