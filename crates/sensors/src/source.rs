//! The sensor-provider abstraction.
//!
//! Everything that can be sampled by `tempd` — real hwmon hardware, the
//! simulated RC-model bank, or a replayed trace — implements
//! [`SensorSource`]. The trait mirrors what lm-sensors gave the original
//! tool: enumerate sensors once, then sample all of them cheaply and
//! repeatedly.

use crate::reading::SensorReading;
use crate::units::Temperature;
use std::fmt;

/// Stable identifier of a sensor within one node. Indexes into the slice
/// returned by [`SensorSource::sensors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorId(pub u16);

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper tables label sensors 1-based: "sensor1" … "sensor6".
        write!(f, "sensor{}", self.0 + 1)
    }
}

/// What a sensor physically measures. The paper distinguishes core CPU
/// sensors (which correlate with code phases) from ambient/chassis sensors
/// (which it found reflected external airflow instead — §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// On-die or per-core CPU sensor.
    CpuCore,
    /// CPU package / heat-spreader sensor.
    CpuPackage,
    /// Motherboard sensor near the VRM or northbridge.
    Motherboard,
    /// Ambient air inside the chassis.
    Ambient,
    /// DIMM or memory-controller sensor.
    Memory,
    /// Anything else (PSU, drive bay, …).
    Other,
}

impl SensorKind {
    /// True for the sensors the paper reports in its tables (the ones that
    /// track code phases).
    pub fn is_cpu(self) -> bool {
        matches!(self, SensorKind::CpuCore | SensorKind::CpuPackage)
    }
}

/// Static description of one sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorInfo {
    /// Identifier used in readings.
    pub id: SensorId,
    /// Human-readable label, e.g. `"CPU0 core"` or `"ambient front"`.
    pub label: String,
    /// What the sensor measures.
    pub kind: SensorKind,
    /// Which CPU socket/core the sensor is attached to, if any.
    pub cpu_index: Option<u16>,
}

impl SensorInfo {
    /// Convenience constructor.
    pub fn new(id: u16, label: impl Into<String>, kind: SensorKind) -> Self {
        SensorInfo {
            id: SensorId(id),
            label: label.into(),
            kind,
            cpu_index: None,
        }
    }

    /// Attach a CPU index.
    pub fn on_cpu(mut self, cpu: u16) -> Self {
        self.cpu_index = Some(cpu);
        self
    }
}

/// A provider of thermal readings.
///
/// Implementations must be cheap to `sample_all` — the paper's `tempd` calls
/// it four times a second and uses <1 % CPU.
pub trait SensorSource: Send {
    /// The fixed set of sensors this source exposes.
    fn sensors(&self) -> &[SensorInfo];

    /// Read every sensor, stamping readings with `timestamp_ns` (nanoseconds
    /// on the profiling clock). Appends to `out` to let callers reuse one
    /// allocation across the sampling loop.
    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>);

    /// Read every sensor into a fresh vector.
    fn sample_all(&mut self, timestamp_ns: u64) -> Vec<SensorReading> {
        let mut out = Vec::with_capacity(self.sensors().len());
        self.sample_into(timestamp_ns, &mut out);
        out
    }

    /// Number of sensors; the paper saw 3 on x86 and up to 7 on PowerPC G5.
    fn sensor_count(&self) -> usize {
        self.sensors().len()
    }
}

/// A trivial source that always reports fixed temperatures. Useful in tests
/// and as a null object for overhead measurements (isolates sampling-loop
/// cost from sensor-read cost).
#[derive(Debug, Clone)]
pub struct ConstantSource {
    infos: Vec<SensorInfo>,
    values: Vec<Temperature>,
}

impl ConstantSource {
    /// Build a source with `labels_and_temps` fixed readings.
    pub fn new(labels_and_temps: Vec<(String, SensorKind, Temperature)>) -> Self {
        let infos = labels_and_temps
            .iter()
            .enumerate()
            .map(|(i, (label, kind, _))| SensorInfo::new(i as u16, label.clone(), *kind))
            .collect();
        let values = labels_and_temps.into_iter().map(|(_, _, t)| t).collect();
        ConstantSource { infos, values }
    }

    /// A single-sensor constant source, handy in unit tests.
    pub fn single(celsius: f64) -> Self {
        ConstantSource::new(vec![(
            "const".to_string(),
            SensorKind::CpuCore,
            Temperature::from_celsius(celsius),
        )])
    }
}

impl SensorSource for ConstantSource {
    fn sensors(&self) -> &[SensorInfo] {
        &self.infos
    }

    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
        for (info, &t) in self.infos.iter().zip(&self.values) {
            out.push(SensorReading::new(info.id, timestamp_ns, t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_id_display_is_one_based() {
        assert_eq!(SensorId(0).to_string(), "sensor1");
        assert_eq!(SensorId(5).to_string(), "sensor6");
    }

    #[test]
    fn cpu_kinds() {
        assert!(SensorKind::CpuCore.is_cpu());
        assert!(SensorKind::CpuPackage.is_cpu());
        assert!(!SensorKind::Ambient.is_cpu());
        assert!(!SensorKind::Motherboard.is_cpu());
    }

    #[test]
    fn constant_source_reports_fixed_values() {
        let mut src = ConstantSource::new(vec![
            (
                "cpu".into(),
                SensorKind::CpuCore,
                Temperature::from_celsius(40.0),
            ),
            (
                "amb".into(),
                SensorKind::Ambient,
                Temperature::from_celsius(25.0),
            ),
        ]);
        assert_eq!(src.sensor_count(), 2);
        let r = src.sample_all(10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].sensor, SensorId(0));
        assert_eq!(r[1].sensor, SensorId(1));
        assert!(r.iter().all(|x| x.timestamp_ns == 10));
        // Stable across repeated samples.
        let r2 = src.sample_all(20);
        assert_eq!(r[0].temperature, r2[0].temperature);
    }

    #[test]
    fn sample_into_appends() {
        let mut src = ConstantSource::single(30.0);
        let mut buf = Vec::new();
        src.sample_into(1, &mut buf);
        src.sample_into(2, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].timestamp_ns, 1);
        assert_eq!(buf[1].timestamp_ns, 2);
    }

    #[test]
    fn sensor_info_builder() {
        let s = SensorInfo::new(2, "CPU1 core", SensorKind::CpuCore).on_cpu(1);
        assert_eq!(s.id, SensorId(2));
        assert_eq!(s.cpu_index, Some(1));
        assert_eq!(s.label, "CPU1 core");
    }
}
