//! Sensor-accuracy validation (§3.4).
//!
//! The paper validated its hardware sensors "by running a set of CPU
//! intensive micro-benchmarks and comparing sensor measurements to those
//! measured by an external sensor attached to the CPU". Here the simulated
//! bank's ground truth plays the external sensor; [`ValidationReport`]
//! accumulates per-sensor error statistics and checks them against a bound
//! (Mercury, the closest prior tool, validated within 1 °C — we apply the
//! same bar).

use crate::units::Temperature;

/// Accumulated error statistics for one sensor against its reference.
#[derive(Debug, Clone, Default)]
pub struct SensorErrorStats {
    /// Number of paired observations.
    pub samples: usize,
    /// Sum of signed errors (reported − reference), °C.
    sum_err: f64,
    /// Sum of squared errors.
    sum_sq: f64,
    /// Largest absolute error observed, °C.
    pub max_abs_err: f64,
}

impl SensorErrorStats {
    /// Record one paired observation.
    pub fn record(&mut self, reported: Temperature, reference: Temperature) {
        let e = reported - reference;
        self.samples += 1;
        self.sum_err += e;
        self.sum_sq += e * e;
        self.max_abs_err = self.max_abs_err.max(e.abs());
    }

    /// Mean signed error (bias), °C.
    pub fn bias(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_err / self.samples as f64
        }
    }

    /// Root-mean-square error, °C.
    pub fn rmse(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            (self.sum_sq / self.samples as f64).sqrt()
        }
    }
}

/// Validation results for a whole sensor bank.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Per-sensor error statistics, indexed like the bank's sensors.
    pub per_sensor: Vec<SensorErrorStats>,
    /// The acceptance bound on max absolute error, °C.
    pub bound_c: f64,
}

impl ValidationReport {
    /// Start a report for `sensor_count` sensors with the given bound.
    pub fn new(sensor_count: usize, bound_c: f64) -> Self {
        ValidationReport {
            per_sensor: vec![SensorErrorStats::default(); sensor_count],
            bound_c,
        }
    }

    /// Record one sampling round: `reported[i]` vs `reference[i]`.
    pub fn record_round(&mut self, reported: &[Temperature], reference: &[Temperature]) {
        assert_eq!(reported.len(), self.per_sensor.len());
        assert_eq!(reference.len(), self.per_sensor.len());
        for ((stat, r), t) in self.per_sensor.iter_mut().zip(reported).zip(reference) {
            stat.record(*r, *t);
        }
    }

    /// True if every sensor's worst-case error is within the bound.
    pub fn passed(&self) -> bool {
        self.per_sensor
            .iter()
            .all(|s| s.max_abs_err <= self.bound_c)
    }

    /// Worst max-abs-error over all sensors, °C.
    pub fn worst_error(&self) -> f64 {
        self.per_sensor
            .iter()
            .map(|s| s.max_abs_err)
            .fold(0.0, f64::max)
    }

    /// Render a human-readable summary table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("sensor  samples      bias      rmse   max|err|  verdict\n");
        for (i, s) in self.per_sensor.iter().enumerate() {
            let verdict = if s.max_abs_err <= self.bound_c {
                "ok"
            } else {
                "FAIL"
            };
            out.push_str(&format!(
                "{:>6}  {:>7}  {:>8.3}  {:>8.3}  {:>9.3}  {}\n",
                i + 1,
                s.samples,
                s.bias(),
                s.rmse(),
                s.max_abs_err,
                verdict
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64) -> Temperature {
        Temperature::from_celsius(x)
    }

    #[test]
    fn perfect_sensor_has_zero_error() {
        let mut r = ValidationReport::new(1, 1.0);
        for i in 0..100 {
            let t = c(30.0 + i as f64 * 0.1);
            r.record_round(&[t], &[t]);
        }
        assert!(r.passed());
        assert_eq!(r.worst_error(), 0.0);
        assert_eq!(r.per_sensor[0].bias(), 0.0);
        assert_eq!(r.per_sensor[0].rmse(), 0.0);
    }

    #[test]
    fn quantised_sensor_within_half_step() {
        use crate::quantize::Quantization;
        let mut r = ValidationReport::new(1, 0.5 + 1e-9);
        let q = Quantization::CPU_GRID;
        let mut x = 20.0;
        while x < 80.0 {
            let truth = c(x);
            r.record_round(&[q.apply(truth)], &[truth]);
            x += 0.0371;
        }
        assert!(
            r.passed(),
            "quantisation error {} exceeds 0.5",
            r.worst_error()
        );
        assert!(r.per_sensor[0].rmse() > 0.0);
    }

    #[test]
    fn biased_sensor_detected() {
        let mut r = ValidationReport::new(1, 1.0);
        for _ in 0..50 {
            r.record_round(&[c(42.0)], &[c(40.0)]);
        }
        assert!(!r.passed());
        assert!((r.per_sensor[0].bias() - 2.0).abs() < 1e-12);
        assert!((r.per_sensor[0].rmse() - 2.0).abs() < 1e-12);
        assert_eq!(r.worst_error(), 2.0);
    }

    #[test]
    fn table_renders_verdicts() {
        let mut r = ValidationReport::new(2, 1.0);
        r.record_round(&[c(40.2), c(45.0)], &[c(40.0), c(40.0)]);
        let table = r.to_table();
        assert!(table.contains("ok"));
        assert!(table.contains("FAIL"));
    }

    #[test]
    #[should_panic]
    fn mismatched_round_length_panics() {
        let mut r = ValidationReport::new(2, 1.0);
        r.record_round(&[c(40.0)], &[c(40.0)]);
    }
}
