//! Platform presets: which sensors a node exposes.
//!
//! §3.4: *"we observed as few as 3 sensors on x86 platforms from AMD and up
//! to 7 sensors on PowerPC G5 systems"*. A [`PlatformSpec`] describes the
//! sensor inventory and how each sensor maps onto the physical node model,
//! so the simulated bank can reproduce either machine.

use crate::quantize::Quantization;
use crate::source::SensorKind;

/// Where on the node model one sensor reads from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorTap {
    /// Die temperature of socket `n`.
    Die(usize),
    /// Heat-sink/package temperature of socket `n`.
    Sink(usize),
    /// Motherboard sensor.
    Board,
    /// Chassis ambient sensor.
    Ambient,
}

/// One sensor's wiring: label, kind, tap point, and quantisation grid.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Human-readable label (mirrors lm-sensors labels).
    pub label: String,
    /// What the sensor measures.
    pub kind: SensorKind,
    /// Where on the node model the sensor reads.
    pub tap: SensorTap,
    /// Reporting grid of the sensor.
    pub quantization: Quantization,
}

impl SensorSpec {
    fn new(label: &str, kind: SensorKind, tap: SensorTap, quantization: Quantization) -> Self {
        SensorSpec {
            label: label.to_string(),
            kind,
            tap,
            quantization,
        }
    }
}

/// A platform's sensor inventory.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Platform name (e.g. `"AMD Opteron (x86_64)"`).
    pub name: String,
    /// The sensors, in the order `tempd` will report them.
    pub sensors: Vec<SensorSpec>,
}

impl PlatformSpec {
    /// The paper's minimal x86 inventory: one CPU die sensor per socket
    /// plus one board sensor — three sensors on a dual-socket AMD box.
    pub fn x86_minimal() -> Self {
        PlatformSpec {
            name: "AMD Opteron (x86_64, 3 sensors)".to_string(),
            sensors: vec![
                SensorSpec::new(
                    "CPU0 die",
                    SensorKind::CpuCore,
                    SensorTap::Die(0),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU1 die",
                    SensorKind::CpuCore,
                    SensorTap::Die(1),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "M/B temp",
                    SensorKind::Motherboard,
                    SensorTap::Board,
                    Quantization::AMBIENT_GRID,
                ),
            ],
        }
    }

    /// The six-sensor inventory visible in the paper's Tables 2–3
    /// (sensor1…sensor6): two ambient/board sensors on coarse grids and
    /// die+sink pairs for both sockets on the 1 °C grid.
    pub fn opteron_full() -> Self {
        PlatformSpec {
            name: "AMD Opteron dual-socket (6 sensors)".to_string(),
            sensors: vec![
                SensorSpec::new(
                    "chassis ambient",
                    SensorKind::Ambient,
                    SensorTap::Ambient,
                    Quantization::AMBIENT_GRID,
                ),
                SensorSpec::new(
                    "M/B temp",
                    SensorKind::Motherboard,
                    SensorTap::Board,
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU0 package",
                    SensorKind::CpuPackage,
                    SensorTap::Sink(0),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU0 die",
                    SensorKind::CpuCore,
                    SensorTap::Die(0),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU1 die",
                    SensorKind::CpuCore,
                    SensorTap::Die(1),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU1 package",
                    SensorKind::CpuPackage,
                    SensorTap::Sink(1),
                    Quantization::CPU_GRID,
                ),
            ],
        }
    }

    /// PowerPC G5 (System X) inventory: up to 7 sensors per node.
    pub fn powerpc_g5() -> Self {
        PlatformSpec {
            name: "PowerPC G5 / System X (7 sensors)".to_string(),
            sensors: vec![
                SensorSpec::new(
                    "CPU A die",
                    SensorKind::CpuCore,
                    SensorTap::Die(0),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU A heatsink",
                    SensorKind::CpuPackage,
                    SensorTap::Sink(0),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU B die",
                    SensorKind::CpuCore,
                    SensorTap::Die(1),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "CPU B heatsink",
                    SensorKind::CpuPackage,
                    SensorTap::Sink(1),
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "drive bay",
                    SensorKind::Other,
                    SensorTap::Ambient,
                    Quantization::AMBIENT_GRID,
                ),
                SensorSpec::new(
                    "backside",
                    SensorKind::Motherboard,
                    SensorTap::Board,
                    Quantization::CPU_GRID,
                ),
                SensorSpec::new(
                    "intake ambient",
                    SensorKind::Ambient,
                    SensorTap::Ambient,
                    Quantization::AMBIENT_GRID,
                ),
            ],
        }
    }

    /// Number of sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// The highest socket index any sensor taps, if any CPU sensor exists.
    pub fn max_socket(&self) -> Option<usize> {
        self.sensors
            .iter()
            .filter_map(|s| match s.tap {
                SensorTap::Die(n) | SensorTap::Sink(n) => Some(n),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sensor_counts() {
        assert_eq!(PlatformSpec::x86_minimal().sensor_count(), 3);
        assert_eq!(PlatformSpec::opteron_full().sensor_count(), 6);
        assert_eq!(PlatformSpec::powerpc_g5().sensor_count(), 7);
    }

    #[test]
    fn opteron_full_matches_table_layout() {
        // Tables 2–3 list six sensors; sensors 4 and 5 show the widest
        // dynamic range (they are die sensors in our mapping).
        let p = PlatformSpec::opteron_full();
        assert_eq!(p.sensors[3].tap, SensorTap::Die(0));
        assert_eq!(p.sensors[4].tap, SensorTap::Die(1));
        assert!(matches!(p.sensors[0].kind, SensorKind::Ambient));
    }

    #[test]
    fn max_socket_spans_all_cpu_sensors() {
        assert_eq!(PlatformSpec::opteron_full().max_socket(), Some(1));
        assert_eq!(PlatformSpec::x86_minimal().max_socket(), Some(1));
    }

    #[test]
    fn cpu_sensors_use_celsius_grid() {
        for p in [PlatformSpec::opteron_full(), PlatformSpec::powerpc_g5()] {
            for s in &p.sensors {
                if s.kind.is_cpu() {
                    assert_eq!(s.quantization, Quantization::CPU_GRID, "{}", s.label);
                }
            }
        }
    }
}
