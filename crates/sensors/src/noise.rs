//! Measurement-noise models.
//!
//! The paper notes that "thermal sensor technology is emergent and at times
//! unstable" (§4.1) and that repeated measurements carry ~5 % variance
//! (§3.4). The noise model injects (deterministic, seeded) Gaussian jitter
//! and occasional spike glitches so the analysis pipeline is exercised on
//! realistic, imperfect data.

use crate::units::Temperature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Additive noise applied to a physical temperature before quantisation.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: StdRng,
    /// Standard deviation of Gaussian jitter, °C.
    pub sigma_c: f64,
    /// Probability per sample of a glitch spike.
    pub spike_prob: f64,
    /// Magnitude of a glitch spike, °C (sign is random).
    pub spike_magnitude_c: f64,
}

impl NoiseModel {
    /// Jitter-only noise with the given standard deviation.
    pub fn gaussian(seed: u64, sigma_c: f64) -> Self {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            sigma_c,
            spike_prob: 0.0,
            spike_magnitude_c: 0.0,
        }
    }

    /// Jitter plus rare spikes — models the "unstable" sensors of §4.1.
    pub fn unstable(seed: u64, sigma_c: f64, spike_prob: f64, spike_magnitude_c: f64) -> Self {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            sigma_c,
            spike_prob,
            spike_magnitude_c,
        }
    }

    /// No noise at all (ground-truth path).
    pub fn none(seed: u64) -> Self {
        NoiseModel::gaussian(seed, 0.0)
    }

    /// Apply noise to one physical temperature.
    pub fn perturb(&mut self, t: Temperature) -> Temperature {
        let mut delta = if self.sigma_c > 0.0 {
            // Box–Muller transform; two uniforms → one normal deviate.
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * self.sigma_c
        } else {
            0.0
        };
        if self.spike_prob > 0.0 && self.rng.gen_bool(self.spike_prob) {
            let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            delta += sign * self.spike_magnitude_c;
        }
        t + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut n = NoiseModel::none(7);
        let t = Temperature::from_celsius(40.0);
        for _ in 0..100 {
            assert_eq!(n.perturb(t), t);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t = Temperature::from_celsius(40.0);
        let mut a = NoiseModel::gaussian(42, 0.5);
        let mut b = NoiseModel::gaussian(42, 0.5);
        for _ in 0..50 {
            assert_eq!(a.perturb(t), b.perturb(t));
        }
    }

    #[test]
    fn gaussian_statistics_roughly_correct() {
        let mut n = NoiseModel::gaussian(1, 0.5);
        let t = Temperature::from_celsius(40.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.perturb(t).celsius() - 40.0).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sdv {}", var.sqrt());
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let mut n = NoiseModel::unstable(9, 0.0, 0.1, 10.0);
        let t = Temperature::from_celsius(40.0);
        let spikes = (0..10_000)
            .filter(|_| (n.perturb(t).celsius() - 40.0).abs() > 5.0)
            .count();
        // Expect ~1000; allow generous slack.
        assert!((700..1300).contains(&spikes), "spikes {spikes}");
    }
}
