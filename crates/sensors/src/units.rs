//! Temperature units.
//!
//! Tempest's figures and tables report degrees Fahrenheit, but hardware
//! sensors (lm-sensors, hwmon) report millidegrees Celsius. [`Temperature`]
//! stores Celsius internally and converts on demand, so the rest of the
//! system never has to guess which unit a raw `f64` is in.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A temperature, stored internally in degrees Celsius.
///
/// `Temperature` is a thin `f64` newtype with explicit unit constructors and
/// accessors. Arithmetic between temperatures operates on the Celsius scale
/// (differences in °C equal differences in Kelvin, so deltas are unambiguous).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Temperature(f64);

impl Temperature {
    /// Absolute zero, the lower bound for any physical reading.
    pub const ABSOLUTE_ZERO: Temperature = Temperature(-273.15);

    /// Construct from degrees Celsius.
    #[inline]
    pub const fn from_celsius(c: f64) -> Self {
        Temperature(c)
    }

    /// Construct from degrees Fahrenheit.
    #[inline]
    pub fn from_fahrenheit(f: f64) -> Self {
        Temperature((f - 32.0) * 5.0 / 9.0)
    }

    /// Construct from millidegrees Celsius (the unit used by Linux hwmon
    /// `temp*_input` files).
    #[inline]
    pub fn from_millicelsius(mc: i64) -> Self {
        Temperature(mc as f64 / 1000.0)
    }

    /// Degrees Celsius.
    #[inline]
    pub fn celsius(self) -> f64 {
        self.0
    }

    /// Degrees Fahrenheit (the paper's reporting unit).
    #[inline]
    pub fn fahrenheit(self) -> f64 {
        self.0 * 9.0 / 5.0 + 32.0
    }

    /// Kelvin.
    #[inline]
    pub fn kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Millidegrees Celsius, rounded to the nearest integer.
    #[inline]
    pub fn millicelsius(self) -> i64 {
        (self.0 * 1000.0).round() as i64
    }

    /// True if the value is a physically plausible sensor reading
    /// (finite and above absolute zero).
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= Self::ABSOLUTE_ZERO.0
    }

    /// Clamp to the inclusive range `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Temperature, hi: Temperature) -> Temperature {
        Temperature(self.0.clamp(lo.0, hi.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Temperature) -> Temperature {
        Temperature(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Temperature) -> Temperature {
        Temperature(self.0.max(other.0))
    }
}

impl fmt::Display for Temperature {
    /// Formats in Fahrenheit with two decimals, matching Tempest's tables
    /// (e.g. `102.20`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.fahrenheit())
    }
}

impl Add<f64> for Temperature {
    type Output = Temperature;
    /// Adds a delta expressed in °C (equivalently, Kelvin).
    #[inline]
    fn add(self, delta_c: f64) -> Temperature {
        Temperature(self.0 + delta_c)
    }
}

impl AddAssign<f64> for Temperature {
    #[inline]
    fn add_assign(&mut self, delta_c: f64) {
        self.0 += delta_c;
    }
}

impl Sub<f64> for Temperature {
    type Output = Temperature;
    #[inline]
    fn sub(self, delta_c: f64) -> Temperature {
        Temperature(self.0 - delta_c)
    }
}

impl SubAssign<f64> for Temperature {
    #[inline]
    fn sub_assign(&mut self, delta_c: f64) {
        self.0 -= delta_c;
    }
}

impl Sub for Temperature {
    type Output = f64;
    /// The difference between two temperatures, in °C/Kelvin.
    #[inline]
    fn sub(self, other: Temperature) -> f64 {
        self.0 - other.0
    }
}

impl Mul<f64> for Temperature {
    type Output = Temperature;
    /// Scales the Celsius value; only meaningful for blending/interpolation.
    #[inline]
    fn mul(self, k: f64) -> Temperature {
        Temperature(self.0 * k)
    }
}

impl Div<f64> for Temperature {
    type Output = Temperature;
    #[inline]
    fn div(self, k: f64) -> Temperature {
        Temperature(self.0 / k)
    }
}

impl Neg for Temperature {
    type Output = Temperature;
    #[inline]
    fn neg(self) -> Temperature {
        Temperature(-self.0)
    }
}

/// Linear interpolation between two temperatures: `a + t*(b - a)`.
#[inline]
pub fn lerp(a: Temperature, b: Temperature, t: f64) -> Temperature {
    Temperature::from_celsius(a.celsius() + t * (b.celsius() - a.celsius()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_roundtrip() {
        let t = Temperature::from_celsius(40.0);
        assert_eq!(t.celsius(), 40.0);
        assert!((t.fahrenheit() - 104.0).abs() < 1e-12);
    }

    #[test]
    fn fahrenheit_roundtrip() {
        let t = Temperature::from_fahrenheit(104.0);
        assert!((t.celsius() - 40.0).abs() < 1e-12);
        assert!((t.fahrenheit() - 104.0).abs() < 1e-12);
    }

    #[test]
    fn paper_grid_values_are_celsius_integers() {
        // Table 2/3 of the paper show 102.20, 104.00, 105.80 °F — a 1 °C grid.
        for (f, c) in [(102.2, 39.0), (104.0, 40.0), (105.8, 41.0), (113.0, 45.0)] {
            let t = Temperature::from_fahrenheit(f);
            assert!(
                (t.celsius() - c).abs() < 1e-9,
                "{f} °F should be {c} °C, got {}",
                t.celsius()
            );
        }
    }

    #[test]
    fn millicelsius_matches_hwmon_convention() {
        let t = Temperature::from_millicelsius(41_500);
        assert!((t.celsius() - 41.5).abs() < 1e-12);
        assert_eq!(t.millicelsius(), 41_500);
    }

    #[test]
    fn kelvin_offset() {
        assert!((Temperature::from_celsius(0.0).kelvin() - 273.15).abs() < 1e-12);
        assert!((Temperature::ABSOLUTE_ZERO.kelvin()).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let a = Temperature::from_celsius(40.0);
        let b = a + 2.5;
        assert!((b.celsius() - 42.5).abs() < 1e-12);
        assert!((b - a - 2.5).abs() < 1e-12);
        let mut c = a;
        c += 1.0;
        c -= 0.5;
        assert!((c.celsius() - 40.5).abs() < 1e-12);
    }

    #[test]
    fn physical_bounds() {
        assert!(Temperature::from_celsius(25.0).is_physical());
        assert!(!Temperature::from_celsius(-300.0).is_physical());
        assert!(!Temperature::from_celsius(f64::NAN).is_physical());
        assert!(!Temperature::from_celsius(f64::INFINITY).is_physical());
    }

    #[test]
    fn clamp_min_max() {
        let lo = Temperature::from_celsius(20.0);
        let hi = Temperature::from_celsius(90.0);
        assert_eq!(Temperature::from_celsius(100.0).clamp(lo, hi), hi);
        assert_eq!(Temperature::from_celsius(10.0).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn display_matches_paper_format() {
        let t = Temperature::from_celsius(39.0);
        assert_eq!(t.to_string(), "102.20");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Temperature::from_celsius(30.0);
        let b = Temperature::from_celsius(50.0);
        assert_eq!(lerp(a, b, 0.0), a);
        assert_eq!(lerp(a, b, 1.0), b);
        assert!((lerp(a, b, 0.5).celsius() - 40.0).abs() < 1e-12);
    }
}
