#![warn(missing_docs)]
//! # tempest-sensors
//!
//! Thermal-sensor substrate for the Tempest thermal profiler.
//!
//! The original Tempest tool (Cameron, Pyla & Varadarajan, ICPP 2007) read
//! motherboard and CPU thermal sensors through the Linux *lm-sensors*
//! package. This crate provides the equivalent abstraction for the Rust
//! reproduction:
//!
//! * [`source::SensorSource`] — the trait every sensor provider implements.
//! * [`hwmon::HwmonSource`] — a real reader for `/sys/class/hwmon` and
//!   `/sys/class/thermal` on Linux machines that have sensors.
//! * [`sim::SimulatedSensorBank`] — a simulated bank of sensors driven by a
//!   lumped-RC thermal model ([`rc_model`]), a power model ([`power`]), a fan
//!   model ([`fan`]) and optional DVFS feedback ([`dvfs`]). This is the
//!   substitute for real cluster hardware: it exercises exactly the same
//!   sampling path the paper's `tempd` daemon used, while remaining fully
//!   deterministic and portable.
//! * [`faults`] — deterministic fault injection ([`faults::FaultySensorSource`])
//!   reproducing the failure modes of real lm-sensors hardware: dropouts,
//!   stuck-at values, spikes/NaN poisoning, slow reads, and permanent death.
//! * [`platform`] — presets reproducing the sensor inventories the paper
//!   observed (3 sensors on x86 Opteron boxes, up to 7 on PowerPC G5).
//! * [`validation`] — the §3.4 "external reference sensor" validation
//!   harness: quantised sensor readings are compared against the model's
//!   ground truth.
//!
//! Temperatures are stored internally in degrees Celsius and converted to
//! Fahrenheit for reporting, matching the paper's figures and tables (which
//! show readings quantised on a 1 °C grid, visible as 1.8 °F steps).

pub mod dvfs;
pub mod fan;
pub mod faults;
pub mod hwmon;
pub mod node_model;
pub mod noise;
pub mod platform;
pub mod power;
pub mod quantize;
pub mod rc_model;
pub mod reading;
pub mod replay;
pub mod sim;
pub mod source;
pub mod units;
pub mod validation;

pub use faults::{FaultKind, FaultPlan, FaultStats, FaultySensorSource, SensorFault};
pub use node_model::{NodeThermalModel, NodeThermalParams};
pub use quantize::Quantization;
pub use reading::SensorReading;
pub use sim::SimulatedSensorBank;
pub use source::{SensorId, SensorInfo, SensorKind, SensorSource};
pub use units::Temperature;
