//! Whole-node thermal model.
//!
//! One [`NodeThermalModel`] represents a cluster node the way the paper's
//! testbed saw it: a number of CPU sockets, each with a die sensor fed by a
//! two-stage RC ladder (die → heat-sink), plus motherboard and ambient
//! sensors. Per-node parameter spread ([`NodeThermalParams::heterogeneous`])
//! reproduces the paper's headline observation that *"thermals vary between
//! systems (under the same load), at times significantly"* — e.g. in
//! Figure 4 nodes 1 and 4 jump above 105 °F, node 2 stays below, and node 3
//! runs at over 110 °F.

use crate::fan::Fan;
use crate::power::{ActivityMix, CorePowerModel};
use crate::rc_model::ThermalStack;
use crate::units::Temperature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-node physical parameters.
#[derive(Debug, Clone)]
pub struct NodeThermalParams {
    /// Room/inlet air temperature.
    pub ambient: Temperature,
    /// CPU sockets on the board.
    pub sockets: usize,
    /// Cores per socket (the paper's Opterons are dual-core).
    pub cores_per_socket: usize,
    /// Die-to-sink thermal resistance, °C/W (includes paste quality).
    pub r_die: f64,
    /// Die thermal capacitance, J/°C (small → fast transients).
    pub c_die: f64,
    /// Sink-to-air thermal resistance at nominal fan speed, °C/W.
    pub r_sink: f64,
    /// Heat-sink + local air capacitance, J/°C (large → slow drift).
    pub c_sink: f64,
    /// Per-core power envelope.
    pub power: CorePowerModel,
    /// Fan (paper default: fixed 3000 RPM).
    pub fan: Fan,
    /// Amplitude of slow ambient fluctuation seen by chassis sensors, °C.
    /// The paper found ambient sensors reflected "external temperatures and
    /// airflow", not code phases.
    pub ambient_wander_c: f64,
}

impl NodeThermalParams {
    /// Baseline parameters for the paper's dual-socket dual-core Opteron
    /// nodes. Calibrated against the paper's figures: an idle socket reads
    /// ≈94 °F, a one-core FP burn climbs through the 104–112 °F band over
    /// ~60 s (Figure 2(b)), and an all-core burn saturates around 125 °F
    /// (Figure 2(a)'s 124 °F max). With a 25 °C room: idle 30 W·0.30 °C/W
    /// → 34 °C (93 °F); burn 60 W → 43 °C (109 °F); τ_sink ≈ 40 s.
    pub fn opteron_node() -> Self {
        NodeThermalParams {
            ambient: Temperature::from_celsius(25.0),
            sockets: 2,
            cores_per_socket: 2,
            r_die: 0.08,
            c_die: 15.0,
            r_sink: 0.22,
            c_sink: 180.0,
            power: CorePowerModel::OPTERON,
            fan: Fan::fixed_high(),
            ambient_wander_c: 0.8,
        }
    }

    /// Single-socket PowerPC G5 node (System X blade).
    pub fn powerpc_g5_node() -> Self {
        NodeThermalParams {
            ambient: Temperature::from_celsius(23.0),
            sockets: 2,
            cores_per_socket: 1,
            r_die: 0.07,
            c_die: 18.0,
            r_sink: 0.10,
            c_sink: 420.0,
            power: CorePowerModel::POWERPC_G5,
            fan: Fan::fixed_high(),
            ambient_wander_c: 0.6,
        }
    }

    /// Derive node-specific parameters by perturbing this baseline with a
    /// deterministic per-node spread: thermal-paste quality (±20 % on
    /// `r_die`), heat-sink seating (±15 % on `r_sink`), and rack position
    /// (±1.5 °C inlet air). `node_index` seeds the perturbation so each
    /// node is stable across runs.
    pub fn heterogeneous(&self, cluster_seed: u64, node_index: usize) -> NodeThermalParams {
        let mut rng = StdRng::seed_from_u64(
            cluster_seed ^ (node_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut p = self.clone();
        p.r_die *= rng.gen_range(0.80..1.20);
        p.r_sink *= rng.gen_range(0.85..1.15);
        p.ambient += rng.gen_range(-1.5..1.5);
        p
    }
}

/// Live thermal state of one node.
#[derive(Debug, Clone)]
pub struct NodeThermalModel {
    params: NodeThermalParams,
    /// One RC ladder per socket.
    sockets: Vec<ThermalStack>,
    /// Board thermal mass (VRM/northbridge region), driven by total power.
    board: ThermalStack,
    /// Phase for the slow ambient wander.
    wander_phase: f64,
    elapsed_s: f64,
}

impl NodeThermalModel {
    /// Build a node at thermal equilibrium with its ambient.
    pub fn new(params: NodeThermalParams) -> Self {
        let socket_stack = ThermalStack::new(
            &[(params.r_die, params.c_die), (params.r_sink, params.c_sink)],
            params.ambient,
        );
        let board = ThermalStack::new(&[(0.4, 900.0)], params.ambient);
        let sockets = vec![socket_stack; params.sockets];
        NodeThermalModel {
            params,
            sockets,
            board,
            wander_phase: 0.0,
            elapsed_s: 0.0,
        }
    }

    /// Node parameters.
    pub fn params(&self) -> &NodeThermalParams {
        &self.params
    }

    /// Total number of cores.
    pub fn core_count(&self) -> usize {
        self.params.sockets * self.params.cores_per_socket
    }

    /// Map a core index to its socket.
    pub fn socket_of_core(&self, core: usize) -> usize {
        core / self.params.cores_per_socket
    }

    /// Advance the node by `dt_s` seconds. `core_loads[i]` gives each
    /// core's activity mix and utilisation for the interval; DVFS scales
    /// come from the caller (1.0/1.0 when DVFS is disabled, per the paper).
    pub fn advance(
        &mut self,
        dt_s: f64,
        core_loads: &[(ActivityMix, f64)],
        dvfs_dynamic: f64,
        dvfs_static: f64,
    ) {
        assert_eq!(
            core_loads.len(),
            self.core_count(),
            "need one load entry per core"
        );
        self.elapsed_s += dt_s;
        // Fan feedback (no-op for fixed fans).
        let hottest = self
            .sockets
            .iter()
            .map(|s| s.source_temperature().celsius())
            .fold(f64::MIN, f64::max);
        self.params.fan.update(hottest);
        let r_factor = self.params.fan.resistance_factor();

        let mut total_power = 0.0;
        for (si, stack) in self.sockets.iter_mut().enumerate() {
            let lo = si * self.params.cores_per_socket;
            let hi = lo + self.params.cores_per_socket;
            let socket_power: f64 = core_loads[lo..hi]
                .iter()
                .map(|&(mix, u)| self.params.power.power(mix, u, dvfs_dynamic, dvfs_static))
                .sum();
            total_power += socket_power;
            stack.scale_exhaust_resistance(r_factor, self.params.r_sink);
            stack.advance(dt_s, socket_power, self.params.ambient);
        }
        // Board heating: a fraction of total node power warms the board mass.
        self.board
            .advance(dt_s, total_power * 0.15, self.params.ambient);
        // Ambient wander: slow pseudo-periodic airflow fluctuation,
        // independent of the workload by construction.
        self.wander_phase = self.elapsed_s / 47.0;
    }

    /// Die temperature of socket `s` — what the paper's "core CPU sensors"
    /// report (before quantisation/noise).
    pub fn die_temperature(&self, s: usize) -> Temperature {
        self.sockets[s].source_temperature()
    }

    /// Heat-sink temperature of socket `s` (package-level sensor).
    pub fn sink_temperature(&self, s: usize) -> Temperature {
        self.sockets[s].stage_temperature(1)
    }

    /// Motherboard sensor temperature.
    pub fn board_temperature(&self) -> Temperature {
        self.board.source_temperature()
    }

    /// Chassis-ambient sensor temperature: inlet air plus the slow wander
    /// that the paper found uncorrelated with code phases.
    pub fn ambient_temperature(&self) -> Temperature {
        let wander = self.params.ambient_wander_c
            * (self.wander_phase.sin() + 0.4 * (self.wander_phase * 2.7 + 1.3).sin());
        self.params.ambient + wander
    }

    /// Reset every thermal mass to ambient equilibrium (§4.1: "we allowed
    /// the system to return to a steady state … after every test").
    pub fn reset(&mut self) {
        for s in &mut self.sockets {
            s.reset_to(self.params.ambient);
        }
        self.board.reset_to(self.params.ambient);
        self.elapsed_s = 0.0;
        self.wander_phase = 0.0;
    }

    /// Seconds of simulated time elapsed since construction/reset.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_cores(model: &NodeThermalModel, mix: ActivityMix, u: f64) -> Vec<(ActivityMix, f64)> {
        vec![(mix, u); model.core_count()]
    }

    #[test]
    fn starts_at_ambient_equilibrium() {
        let m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        for s in 0..2 {
            assert!((m.die_temperature(s) - m.params().ambient).abs() < 1e-9);
        }
        assert!((m.board_temperature() - m.params().ambient).abs() < 1e-9);
    }

    #[test]
    fn burn_reaches_paper_temperature_band() {
        // All-core FP burn should settle into the ~40-46 °C (104-115 °F)
        // band the paper's figures show for hot nodes.
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        let loads = all_cores(&m, ActivityMix::FpDense, 1.0);
        for _ in 0..600 {
            m.advance(1.0, &loads, 1.0, 1.0);
        }
        let f = m.die_temperature(0).fahrenheit();
        assert!(
            (104.0..132.0).contains(&f),
            "hot die at {f} °F outside paper band"
        );
    }

    #[test]
    fn idle_node_stays_near_ambient() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        let loads = all_cores(&m, ActivityMix::Idle, 0.0);
        for _ in 0..300 {
            m.advance(1.0, &loads, 1.0, 1.0);
        }
        // Idle power still warms the die a little, but nowhere near burn.
        let dt = m.die_temperature(0) - m.params().ambient;
        assert!(dt > 0.5 && dt < 10.0, "idle rise {dt} °C");
    }

    #[test]
    fn die_hotter_than_sink_hotter_than_ambient_under_load() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        let loads = all_cores(&m, ActivityMix::FpDense, 1.0);
        for _ in 0..120 {
            m.advance(1.0, &loads, 1.0, 1.0);
        }
        assert!(m.die_temperature(0) > m.sink_temperature(0));
        assert!(m.sink_temperature(0) > m.params().ambient);
    }

    #[test]
    fn per_socket_loads_are_independent() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        // Socket 0 busy, socket 1 idle.
        let mut loads = all_cores(&m, ActivityMix::Idle, 0.0);
        loads[0] = (ActivityMix::FpDense, 1.0);
        loads[1] = (ActivityMix::FpDense, 1.0);
        for _ in 0..200 {
            m.advance(1.0, &loads, 1.0, 1.0);
        }
        assert!(
            m.die_temperature(0) - m.die_temperature(1) > 3.0,
            "busy socket should run hotter: {} vs {}",
            m.die_temperature(0),
            m.die_temperature(1)
        );
    }

    #[test]
    fn heterogeneous_nodes_diverge_under_identical_load() {
        let base = NodeThermalParams::opteron_node();
        let mut temps = Vec::new();
        for node in 0..4 {
            let mut m = NodeThermalModel::new(base.heterogeneous(1234, node));
            let loads = all_cores(&m, ActivityMix::FpDense, 1.0);
            for _ in 0..400 {
                m.advance(1.0, &loads, 1.0, 1.0);
            }
            temps.push(m.die_temperature(0).fahrenheit());
        }
        let min = temps.iter().cloned().fold(f64::MAX, f64::min);
        let max = temps.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max - min > 2.0,
            "heterogeneity should spread nodes by several °F, got {temps:?}"
        );
    }

    #[test]
    fn heterogeneous_is_deterministic_per_node() {
        let base = NodeThermalParams::opteron_node();
        let a = base.heterogeneous(7, 2);
        let b = base.heterogeneous(7, 2);
        assert_eq!(a.r_die, b.r_die);
        assert_eq!(a.r_sink, b.r_sink);
        let c = base.heterogeneous(7, 3);
        assert_ne!(a.r_die, c.r_die);
    }

    #[test]
    fn reset_restores_equilibrium() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        let loads = all_cores(&m, ActivityMix::FpDense, 1.0);
        for _ in 0..100 {
            m.advance(1.0, &loads, 1.0, 1.0);
        }
        m.reset();
        assert!((m.die_temperature(0) - m.params().ambient).abs() < 1e-9);
        assert_eq!(m.elapsed_s(), 0.0);
    }

    #[test]
    fn ambient_sensor_wanders_independent_of_load() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        let idle = all_cores(&m, ActivityMix::Idle, 0.0);
        let mut readings = Vec::new();
        for _ in 0..200 {
            m.advance(1.0, &idle, 1.0, 1.0);
            readings.push(m.ambient_temperature().celsius());
        }
        let min = readings.iter().cloned().fold(f64::MAX, f64::min);
        let max = readings.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.2, "ambient should wander");
        assert!(max - min < 4.0, "but not wildly");
    }

    #[test]
    fn dvfs_scaling_cools_the_node() {
        let base = NodeThermalParams::opteron_node();
        let mut full = NodeThermalModel::new(base.clone());
        let mut scaled = NodeThermalModel::new(base);
        let loads = all_cores(&full, ActivityMix::FpDense, 1.0);
        for _ in 0..300 {
            full.advance(1.0, &loads, 1.0, 1.0);
            scaled.advance(1.0, &loads, 0.5, 0.85);
        }
        assert!(scaled.die_temperature(0) < full.die_temperature(0));
    }

    #[test]
    fn socket_of_core_mapping() {
        let m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        assert_eq!(m.core_count(), 4);
        assert_eq!(m.socket_of_core(0), 0);
        assert_eq!(m.socket_of_core(1), 0);
        assert_eq!(m.socket_of_core(2), 1);
        assert_eq!(m.socket_of_core(3), 1);
    }

    #[test]
    #[should_panic(expected = "one load entry per core")]
    fn wrong_load_count_panics() {
        let mut m = NodeThermalModel::new(NodeThermalParams::opteron_node());
        m.advance(1.0, &[(ActivityMix::Idle, 0.0)], 1.0, 1.0);
    }
}
