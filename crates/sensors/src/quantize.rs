//! Sensor quantisation.
//!
//! Real motherboard sensors do not report continuous values. The Opteron
//! system in the paper reports on a 1 °C grid (visible as 1.8 °F steps in
//! Tables 2–3: 102.20, 104.00, 105.80 …), while some ambient sensors report
//! on a 1 °F grid (91.00, 94.00 …). [`Quantization`] captures both, plus an
//! exact mode used as the "external reference sensor" in validation.

use crate::units::Temperature;

/// How a sensor rounds the underlying physical temperature before reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantization {
    /// No quantisation; reports the exact model temperature. Used as the
    /// external-reference ground truth in §3.4-style validation.
    None,
    /// Round to the nearest multiple of `millicelsius` thousandths of a °C.
    /// `CelsiusStep(1000)` is the 1 °C grid of the paper's CPU sensors.
    CelsiusStep(u32),
    /// Round to the nearest multiple of `millifahrenheit` thousandths of a
    /// °F. `FahrenheitStep(1000)` matches the paper's integral-°F ambient
    /// sensors.
    FahrenheitStep(u32),
}

impl Quantization {
    /// The 1 °C grid used by the paper's CPU core sensors.
    pub const CPU_GRID: Quantization = Quantization::CelsiusStep(1000);
    /// The 1 °F grid used by the paper's board/ambient sensors.
    pub const AMBIENT_GRID: Quantization = Quantization::FahrenheitStep(1000);

    /// Apply the quantisation to a physical temperature.
    pub fn apply(self, t: Temperature) -> Temperature {
        match self {
            Quantization::None => t,
            Quantization::CelsiusStep(mc) => {
                let step = mc.max(1) as f64 / 1000.0;
                Temperature::from_celsius((t.celsius() / step).round() * step)
            }
            Quantization::FahrenheitStep(mf) => {
                let step = mf.max(1) as f64 / 1000.0;
                Temperature::from_fahrenheit((t.fahrenheit() / step).round() * step)
            }
        }
    }

    /// The worst-case absolute error introduced by this quantisation, in °C.
    pub fn max_error_celsius(self) -> f64 {
        match self {
            Quantization::None => 0.0,
            Quantization::CelsiusStep(mc) => mc.max(1) as f64 / 1000.0 / 2.0,
            Quantization::FahrenheitStep(mf) => mf.max(1) as f64 / 1000.0 * 5.0 / 9.0 / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let t = Temperature::from_celsius(40.123456);
        assert_eq!(Quantization::None.apply(t), t);
        assert_eq!(Quantization::None.max_error_celsius(), 0.0);
    }

    #[test]
    fn celsius_grid_rounds_to_integer_celsius() {
        let q = Quantization::CPU_GRID;
        assert!((q.apply(Temperature::from_celsius(40.4)).celsius() - 40.0).abs() < 1e-9);
        assert!((q.apply(Temperature::from_celsius(40.6)).celsius() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn celsius_grid_produces_paper_fahrenheit_steps() {
        // Successive 1 °C steps are 1.8 °F apart: 102.2, 104.0, 105.8.
        let q = Quantization::CPU_GRID;
        let f39 = q.apply(Temperature::from_celsius(39.2)).fahrenheit();
        let f40 = q.apply(Temperature::from_celsius(40.1)).fahrenheit();
        let f41 = q.apply(Temperature::from_celsius(41.4)).fahrenheit();
        assert!((f39 - 102.2).abs() < 1e-9);
        assert!((f40 - 104.0).abs() < 1e-9);
        assert!((f41 - 105.8).abs() < 1e-9);
    }

    #[test]
    fn fahrenheit_grid_rounds_to_integer_fahrenheit() {
        let q = Quantization::AMBIENT_GRID;
        let t = q.apply(Temperature::from_fahrenheit(91.4));
        assert!((t.fahrenheit() - 91.0).abs() < 1e-9);
    }

    #[test]
    fn half_celsius_grid() {
        let q = Quantization::CelsiusStep(500);
        assert!((q.apply(Temperature::from_celsius(40.3)).celsius() - 40.5).abs() < 1e-9);
        assert!((q.max_error_celsius() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_step_does_not_divide_by_zero() {
        // Degenerate config: step of 0 is clamped to 1 m°C.
        let q = Quantization::CelsiusStep(0);
        let t = q.apply(Temperature::from_celsius(40.0004));
        assert!(t.is_physical());
    }

    #[test]
    fn error_bound_holds_on_sweep() {
        for q in [
            Quantization::CPU_GRID,
            Quantization::AMBIENT_GRID,
            Quantization::CelsiusStep(250),
        ] {
            let bound = q.max_error_celsius() + 1e-9;
            let mut c = 20.0;
            while c < 90.0 {
                let t = Temperature::from_celsius(c);
                let err = (q.apply(t) - t).abs();
                assert!(err <= bound, "{q:?}: err {err} > bound {bound} at {c}");
                c += 0.137;
            }
        }
    }
}
