//! CPU power model: activity → watts.
//!
//! The paper fixes frequency (DVFS off) and attributes thermal differences
//! to *what* the code does — "the workload characteristics including amount
//! and type of computation can affect the thermals significantly" (§5). We
//! model that with a linear idle/busy power envelope scaled by an
//! instruction-mix factor: FP-dense loops draw near-peak power, while
//! memory-bound or communication-wait phases draw much less.

/// The kind of work a core is doing, used to scale dynamic power.
///
/// Values are derived from the power phases reported for NAS PB codes in
/// Cameron, Ge & Feng (IEEE Computer 2005), the paper's reference \[3\]:
/// all-to-all communication phases draw close to idle power while dense FP
/// compute approaches TDP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivityMix {
    /// Halted / OS idle loop.
    Idle,
    /// Spinning on communication (MPI busy-wait): bus activity, little FP.
    CommWait,
    /// Memory-bound computation (streaming, pointer chasing).
    MemoryBound,
    /// Mixed integer/FP computation.
    Balanced,
    /// Dense floating-point computation (the "CPU burn" of Figure 2).
    FpDense,
    /// Custom dynamic-power fraction in `[0, 1]`.
    Custom(f64),
}

impl ActivityMix {
    /// Fraction of the dynamic power envelope this mix consumes.
    pub fn dynamic_fraction(self) -> f64 {
        match self {
            ActivityMix::Idle => 0.0,
            ActivityMix::CommWait => 0.30,
            ActivityMix::MemoryBound => 0.55,
            ActivityMix::Balanced => 0.75,
            ActivityMix::FpDense => 1.0,
            ActivityMix::Custom(f) => f.clamp(0.0, 1.0),
        }
    }
}

/// Per-core linear power envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    /// Power drawn by an idle core at nominal frequency, watts.
    pub idle_watts: f64,
    /// Power drawn by a fully busy FP-dense core at nominal frequency, watts.
    pub busy_watts: f64,
}

impl CorePowerModel {
    /// The dual-core Opteron-era envelope used for the paper's cluster:
    /// ~15 W idle, ~45 W flat-out per core (95 W TDP per dual-core socket).
    pub const OPTERON: CorePowerModel = CorePowerModel {
        idle_watts: 15.0,
        busy_watts: 45.0,
    };

    /// PowerPC 970 (System X) envelope.
    pub const POWERPC_G5: CorePowerModel = CorePowerModel {
        idle_watts: 20.0,
        busy_watts: 55.0,
    };

    /// Power for a core running `mix` at `utilization` ∈ \[0,1\] of the time,
    /// with a frequency/voltage scale factor (1.0 = nominal).
    ///
    /// Dynamic power scales as `f·V²`; [`crate::dvfs`] supplies the combined
    /// factor. Static (idle) power is scaled by `V` only, approximating
    /// leakage reduction at lower voltage.
    pub fn power(
        self,
        mix: ActivityMix,
        utilization: f64,
        dvfs_dynamic: f64,
        dvfs_static: f64,
    ) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let dynamic = (self.busy_watts - self.idle_watts) * mix.dynamic_fraction() * u;
        self.idle_watts * dvfs_static + dynamic * dvfs_dynamic
    }

    /// Power at nominal frequency (no DVFS scaling).
    pub fn power_nominal(self, mix: ActivityMix, utilization: f64) -> f64 {
        self.power(mix, utilization, 1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_draws_idle_power() {
        let m = CorePowerModel::OPTERON;
        assert!((m.power_nominal(ActivityMix::Idle, 1.0) - 15.0).abs() < 1e-12);
        assert!((m.power_nominal(ActivityMix::FpDense, 0.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn fp_dense_draws_busy_power() {
        let m = CorePowerModel::OPTERON;
        assert!((m.power_nominal(ActivityMix::FpDense, 1.0) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn mix_ordering_matches_physics() {
        let m = CorePowerModel::OPTERON;
        let p = |mix| m.power_nominal(mix, 1.0);
        assert!(p(ActivityMix::Idle) < p(ActivityMix::CommWait));
        assert!(p(ActivityMix::CommWait) < p(ActivityMix::MemoryBound));
        assert!(p(ActivityMix::MemoryBound) < p(ActivityMix::Balanced));
        assert!(p(ActivityMix::Balanced) < p(ActivityMix::FpDense));
    }

    #[test]
    fn custom_fraction_clamped() {
        assert_eq!(ActivityMix::Custom(2.0).dynamic_fraction(), 1.0);
        assert_eq!(ActivityMix::Custom(-1.0).dynamic_fraction(), 0.0);
        assert!((ActivityMix::Custom(0.4).dynamic_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamped() {
        let m = CorePowerModel::OPTERON;
        assert_eq!(
            m.power_nominal(ActivityMix::FpDense, 5.0),
            m.power_nominal(ActivityMix::FpDense, 1.0)
        );
    }

    #[test]
    fn dvfs_reduces_power() {
        let m = CorePowerModel::OPTERON;
        let full = m.power(ActivityMix::FpDense, 1.0, 1.0, 1.0);
        let scaled = m.power(ActivityMix::FpDense, 1.0, 0.5, 0.8);
        assert!(scaled < full);
        // Static floor still present.
        assert!(scaled > 0.0);
    }
}
