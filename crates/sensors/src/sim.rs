//! The simulated sensor bank: the full substitute for lm-sensors hardware.
//!
//! [`SimulatedSensorBank`] wires a [`NodeThermalModel`] to a
//! [`PlatformSpec`]: each platform sensor taps a point of the physical
//! model, then passes through a per-sensor [`NoiseModel`] and
//! [`Quantization`](crate::Quantization) before being reported — exactly the signal chain a real
//! motherboard sensor presents to `tempd`. The unquantised, noise-free tap
//! value is retained as ground truth for §3.4-style validation.

use crate::node_model::NodeThermalModel;
use crate::noise::NoiseModel;
use crate::platform::{PlatformSpec, SensorTap};
use crate::reading::SensorReading;
use crate::source::{SensorInfo, SensorSource};
use crate::units::Temperature;

/// A simulated bank of sensors over one node's thermal model.
#[derive(Debug, Clone)]
pub struct SimulatedSensorBank {
    platform: PlatformSpec,
    model: NodeThermalModel,
    infos: Vec<SensorInfo>,
    noise: Vec<NoiseModel>,
    /// Ground-truth (pre-noise, pre-quantisation) value of the last sample.
    last_truth: Vec<Temperature>,
}

impl SimulatedSensorBank {
    /// Build a bank. `noise_seed` derives one independent noise stream per
    /// sensor; `sigma_c = 0` gives noiseless (but still quantised) sensors.
    pub fn new(
        platform: PlatformSpec,
        model: NodeThermalModel,
        noise_seed: u64,
        sigma_c: f64,
    ) -> Self {
        if let Some(max_socket) = platform.max_socket() {
            assert!(
                max_socket < model.params().sockets,
                "platform taps socket {max_socket} but node has {} sockets",
                model.params().sockets
            );
        }
        let infos = platform
            .sensors
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut info = SensorInfo::new(i as u16, s.label.clone(), s.kind);
                if let SensorTap::Die(n) | SensorTap::Sink(n) = s.tap {
                    info = info.on_cpu(n as u16);
                }
                info
            })
            .collect();
        let noise = (0..platform.sensors.len())
            .map(|i| NoiseModel::gaussian(noise_seed.wrapping_add(i as u64 * 0x5DEE_CE66), sigma_c))
            .collect();
        let n = platform.sensors.len();
        SimulatedSensorBank {
            platform,
            model,
            infos,
            noise,
            last_truth: vec![Temperature::from_celsius(0.0); n],
        }
    }

    /// Mutable access to the underlying node model (to advance it between
    /// samples).
    pub fn model_mut(&mut self) -> &mut NodeThermalModel {
        &mut self.model
    }

    /// The underlying node model.
    pub fn model(&self) -> &NodeThermalModel {
        &self.model
    }

    /// The platform spec this bank simulates.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Ground-truth temperatures captured during the most recent
    /// `sample_*` call — the "external reference sensor" for validation.
    pub fn last_ground_truth(&self) -> &[Temperature] {
        &self.last_truth
    }

    fn tap_value(&self, tap: SensorTap) -> Temperature {
        match tap {
            SensorTap::Die(s) => self.model.die_temperature(s),
            SensorTap::Sink(s) => self.model.sink_temperature(s),
            SensorTap::Board => self.model.board_temperature(),
            SensorTap::Ambient => self.model.ambient_temperature(),
        }
    }
}

impl SensorSource for SimulatedSensorBank {
    fn sensors(&self) -> &[SensorInfo] {
        &self.infos
    }

    fn sample_into(&mut self, timestamp_ns: u64, out: &mut Vec<SensorReading>) {
        for i in 0..self.platform.sensors.len() {
            let spec = &self.platform.sensors[i];
            let truth = self.tap_value(spec.tap);
            self.last_truth[i] = truth;
            let noisy = self.noise[i].perturb(truth);
            let reported = spec.quantization.apply(noisy);
            out.push(SensorReading::new(self.infos[i].id, timestamp_ns, reported));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_model::NodeThermalParams;
    use crate::platform::PlatformSpec;
    use crate::power::ActivityMix;
    use crate::source::SensorId;

    fn bank() -> SimulatedSensorBank {
        SimulatedSensorBank::new(
            PlatformSpec::opteron_full(),
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            42,
            0.0,
        )
    }

    #[test]
    fn exposes_platform_sensor_count() {
        let b = bank();
        assert_eq!(b.sensor_count(), 6);
        assert_eq!(b.sensors()[3].cpu_index, Some(0));
    }

    #[test]
    fn readings_are_quantised_on_celsius_grid() {
        let mut b = bank();
        let loads = vec![(ActivityMix::FpDense, 1.0); 4];
        for _ in 0..30 {
            b.model_mut().advance(1.0, &loads, 1.0, 1.0);
        }
        let r = b.sample_all(30_000_000_000);
        // Sensor index 3 is CPU0 die, quantised to integer Celsius.
        let c = r[3].temperature.celsius();
        assert!(
            (c - c.round()).abs() < 1e-9,
            "die sensor not on 1 °C grid: {c}"
        );
    }

    #[test]
    fn ground_truth_tracks_reported_value_within_quantisation() {
        let mut b = bank();
        let loads = vec![(ActivityMix::Balanced, 1.0); 4];
        for step in 0..60 {
            b.model_mut().advance(1.0, &loads, 1.0, 1.0);
            let r = b.sample_all(step as u64 * 1_000_000_000);
            let truth = b.last_ground_truth().to_vec();
            for (reading, t) in r.iter().zip(&truth) {
                let err = (reading.temperature - *t).abs();
                assert!(err <= 0.75, "reported vs truth error {err} °C too large");
            }
        }
    }

    #[test]
    fn hot_workload_raises_die_sensor() {
        let mut b = bank();
        let first = b.sample_all(0)[3].temperature;
        let loads = vec![(ActivityMix::FpDense, 1.0); 4];
        for _ in 0..120 {
            b.model_mut().advance(1.0, &loads, 1.0, 1.0);
        }
        let after = b.sample_all(120_000_000_000)[3].temperature;
        assert!(after - first > 5.0, "die should warm by >5 °C under burn");
    }

    #[test]
    fn sensor_ids_are_sequential() {
        let mut b = bank();
        let r = b.sample_all(0);
        for (i, reading) in r.iter().enumerate() {
            assert_eq!(reading.sensor, SensorId(i as u16));
        }
    }

    #[test]
    #[should_panic(expected = "sockets")]
    fn platform_incompatible_with_node_rejected() {
        // G5 platform taps socket 1, but build a single-socket node.
        let mut params = NodeThermalParams::opteron_node();
        params.sockets = 1;
        SimulatedSensorBank::new(
            PlatformSpec::powerpc_g5(),
            NodeThermalModel::new(params),
            0,
            0.0,
        );
    }

    #[test]
    fn noise_streams_differ_between_sensors() {
        let mut b = SimulatedSensorBank::new(
            PlatformSpec::opteron_full(),
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            42,
            3.0, // exaggerated noise so quantisation doesn't mask it
        );
        let loads = vec![(ActivityMix::Balanced, 1.0); 4];
        let mut diffs = 0;
        for _ in 0..50 {
            b.model_mut().advance(1.0, &loads, 1.0, 1.0);
            let r = b.sample_all(0);
            // Die sensors of the two sockets see identical loads; only
            // noise can separate them sample-to-sample.
            if (r[3].temperature - r[4].temperature).abs() > 1e-9 {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "independent noise should separate twin sensors");
    }
}
