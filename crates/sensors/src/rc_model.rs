//! Lumped-parameter RC thermal models.
//!
//! This is the physical substrate standing in for real hardware: the same
//! first-order heat-flow abstraction that tools like Mercury (Heath et al.,
//! 2006) use for whole-system emulation. A thermal mass with capacitance `C`
//! (J/°C) connected to an environment at `T_env` through a thermal
//! resistance `R` (°C/W) and heated with power `P` (W) obeys
//!
//! ```text
//! C · dT/dt = P − (T − T_env)/R
//! ```
//!
//! For piecewise-constant power the ODE has the closed form
//!
//! ```text
//! T(t+Δt) = T_ss + (T(t) − T_ss) · exp(−Δt/(R·C)),   T_ss = T_env + P·R
//! ```
//!
//! which [`RcNode::advance`] uses directly — the integrator is *exact* for
//! constant inputs, so simulation accuracy is independent of step size.
//! [`ThermalStack`] chains several nodes (die → heat-sink → case air) to get
//! the realistic fast-transient + slow-drift behaviour visible in the
//! paper's Figures 2–4.

use crate::units::Temperature;

/// One thermal mass coupled to a reference environment.
#[derive(Debug, Clone, PartialEq)]
pub struct RcNode {
    /// Thermal resistance to the environment, °C per watt.
    pub resistance: f64,
    /// Thermal capacitance, joules per °C.
    pub capacitance: f64,
    /// Current temperature of the mass.
    pub temperature: Temperature,
}

impl RcNode {
    /// Create a node at thermal equilibrium with `env` (zero power).
    pub fn at_equilibrium(resistance: f64, capacitance: f64, env: Temperature) -> Self {
        assert!(resistance > 0.0, "thermal resistance must be positive");
        assert!(capacitance > 0.0, "thermal capacitance must be positive");
        RcNode {
            resistance,
            capacitance,
            temperature: env,
        }
    }

    /// The time constant τ = R·C in seconds.
    #[inline]
    pub fn time_constant(&self) -> f64 {
        self.resistance * self.capacitance
    }

    /// The steady-state temperature for constant power `p_watts` against an
    /// environment at `env`.
    #[inline]
    pub fn steady_state(&self, p_watts: f64, env: Temperature) -> Temperature {
        env + p_watts * self.resistance
    }

    /// Advance the node by `dt_s` seconds under constant power `p_watts`
    /// and environment `env`, using the exact exponential solution.
    pub fn advance(&mut self, dt_s: f64, p_watts: f64, env: Temperature) {
        debug_assert!(dt_s >= 0.0);
        if dt_s == 0.0 {
            return;
        }
        let t_ss = self.steady_state(p_watts, env);
        let alpha = (-dt_s / self.time_constant()).exp();
        self.temperature = t_ss + (self.temperature - t_ss) * alpha;
    }

    /// Heat currently flowing from this node into the environment, in watts.
    #[inline]
    pub fn heat_flow_out(&self, env: Temperature) -> f64 {
        (self.temperature - env) / self.resistance
    }
}

/// A series chain of RC stages: stage 0 is the heat source (CPU die), the
/// last stage couples to the ambient environment.
///
/// Each step treats neighbouring stage temperatures as the local environment
/// over the sub-interval, which is the standard explicit staggered update
/// for thermal ladders; we subdivide internally so the coupling error stays
/// below the sensors' quantisation floor.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalStack {
    stages: Vec<RcNode>,
    /// Upper bound on the internal sub-step, seconds.
    max_substep: f64,
}

impl ThermalStack {
    /// Build a chain from `(resistance, capacitance)` pairs, all starting at
    /// equilibrium with `ambient`. Stage 0 receives the input power.
    pub fn new(stages: &[(f64, f64)], ambient: Temperature) -> Self {
        assert!(
            !stages.is_empty(),
            "a thermal stack needs at least one stage"
        );
        let stages = stages
            .iter()
            .map(|&(r, c)| RcNode::at_equilibrium(r, c, ambient))
            .collect::<Vec<_>>();
        // Sub-step at 1/10 of the fastest time constant keeps the staggered
        // coupling error far below 1 °C sensor quantisation.
        let fastest = stages
            .iter()
            .map(RcNode::time_constant)
            .fold(f64::INFINITY, f64::min);
        ThermalStack {
            stages,
            max_substep: fastest / 10.0,
        }
    }

    /// Temperature of the heat-source stage (what a CPU die sensor sees).
    pub fn source_temperature(&self) -> Temperature {
        self.stages[0].temperature
    }

    /// Temperature of stage `i` (0 = die; later stages are sink/case).
    pub fn stage_temperature(&self, i: usize) -> Temperature {
        self.stages[i].temperature
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Force every stage back to equilibrium with `ambient` — the paper's
    /// "allow the system to return to steady state after every test".
    pub fn reset_to(&mut self, ambient: Temperature) {
        for s in &mut self.stages {
            s.temperature = ambient;
        }
    }

    /// Scale the resistance of the final (case→ambient) stage, modelling fan
    /// airflow: `factor` < 1 means stronger cooling. Applies to the last
    /// stage only; die→sink conduction is unaffected by airflow.
    pub fn scale_exhaust_resistance(&mut self, factor: f64, nominal_r: f64) {
        let last = self.stages.len() - 1;
        self.stages[last].resistance = (nominal_r * factor).max(1e-6);
    }

    /// Advance the whole chain by `dt_s` seconds with `p_watts` injected
    /// into stage 0 and the far end coupled to `ambient`.
    pub fn advance(&mut self, dt_s: f64, p_watts: f64, ambient: Temperature) {
        debug_assert!(dt_s >= 0.0);
        let mut remaining = dt_s;
        while remaining > 0.0 {
            let step = remaining.min(self.max_substep);
            self.advance_substep(step, p_watts, ambient);
            remaining -= step;
        }
    }

    fn advance_substep(&mut self, dt_s: f64, p_watts: f64, ambient: Temperature) {
        let n = self.stages.len();
        // Heat flowing into each stage = power in (stage 0) or conduction
        // from the previous stage; environment = next stage (or ambient).
        let temps: Vec<Temperature> = self.stages.iter().map(|s| s.temperature).collect();
        for i in 0..n {
            let env = if i + 1 < n { temps[i + 1] } else { ambient };
            let p_in = if i == 0 {
                p_watts
            } else {
                // Conduction from the hotter upstream stage through the
                // upstream stage's resistance.
                (temps[i - 1] - temps[i]) / self.stages[i - 1].resistance
            };
            self.stages[i].advance(dt_s, p_in, env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amb() -> Temperature {
        Temperature::from_celsius(25.0)
    }

    #[test]
    fn equilibrium_is_stable_without_power() {
        let mut n = RcNode::at_equilibrium(0.5, 100.0, amb());
        n.advance(1000.0, 0.0, amb());
        assert!((n.temperature - amb()).abs() < 1e-9);
    }

    #[test]
    fn converges_to_steady_state() {
        let mut n = RcNode::at_equilibrium(0.5, 100.0, amb());
        // P=60 W through 0.5 °C/W → ΔT = 30 °C. After 15τ the residual is
        // 30·e⁻¹⁵ ≈ 9e-6 °C.
        n.advance(15.0 * n.time_constant(), 60.0, amb());
        let ss = n.steady_state(60.0, amb());
        assert!((ss.celsius() - 55.0).abs() < 1e-9);
        assert!((n.temperature - ss).abs() < 1e-4);
    }

    #[test]
    fn exact_solution_matches_analytic_form() {
        let mut n = RcNode::at_equilibrium(0.4, 50.0, amb());
        let p = 80.0;
        let dt = 7.3;
        n.advance(dt, p, amb());
        let tau = 0.4 * 50.0;
        let t_ss = 25.0 + p * 0.4;
        let expect = t_ss + (25.0 - t_ss) * (-dt / tau).exp();
        assert!((n.temperature.celsius() - expect).abs() < 1e-9);
    }

    #[test]
    fn step_size_independence() {
        // One 10 s step == ten 1 s steps, because the integrator is exact.
        let mut a = RcNode::at_equilibrium(0.5, 100.0, amb());
        let mut b = a.clone();
        a.advance(10.0, 60.0, amb());
        for _ in 0..10 {
            b.advance(1.0, 60.0, amb());
        }
        assert!((a.temperature - b.temperature).abs() < 1e-9);
    }

    #[test]
    fn warming_is_monotone_toward_steady_state() {
        let mut n = RcNode::at_equilibrium(0.5, 100.0, amb());
        let mut prev = n.temperature;
        for _ in 0..50 {
            n.advance(5.0, 60.0, amb());
            assert!(n.temperature >= prev);
            assert!(n.temperature <= n.steady_state(60.0, amb()) + 1e-9);
            prev = n.temperature;
        }
    }

    #[test]
    fn cooling_after_power_off() {
        let mut n = RcNode::at_equilibrium(0.5, 100.0, amb());
        n.advance(500.0, 60.0, amb());
        let hot = n.temperature;
        n.advance(5.0, 0.0, amb());
        assert!(n.temperature < hot);
        n.advance(10_000.0, 0.0, amb());
        assert!((n.temperature - amb()).abs() < 1e-6);
    }

    #[test]
    fn heat_flow_balances_at_steady_state() {
        let mut n = RcNode::at_equilibrium(0.5, 100.0, amb());
        n.advance(1e6, 42.0, amb());
        assert!((n.heat_flow_out(amb()) - 42.0).abs() < 1e-6);
    }

    #[test]
    fn stack_source_runs_hotter_than_sink() {
        let mut s = ThermalStack::new(&[(0.25, 20.0), (0.35, 400.0)], amb());
        s.advance(300.0, 60.0, amb());
        assert!(s.stage_temperature(0) > s.stage_temperature(1));
        assert!(s.stage_temperature(1) > amb());
    }

    #[test]
    fn stack_steady_state_sums_resistances() {
        // In steady state all power flows through every stage, so
        // T_die = ambient + P·(R0 + R1).
        let mut s = ThermalStack::new(&[(0.25, 20.0), (0.35, 400.0)], amb());
        s.advance(50_000.0, 60.0, amb());
        let expect = 25.0 + 60.0 * (0.25 + 0.35);
        assert!(
            (s.source_temperature().celsius() - expect).abs() < 0.05,
            "got {} expected {expect}",
            s.source_temperature().celsius()
        );
    }

    #[test]
    fn stack_reset_restores_equilibrium() {
        let mut s = ThermalStack::new(&[(0.25, 20.0), (0.35, 400.0)], amb());
        s.advance(100.0, 80.0, amb());
        assert!(s.source_temperature() > amb());
        s.reset_to(amb());
        assert_eq!(s.source_temperature(), amb());
        assert_eq!(s.stage_temperature(1), amb());
    }

    #[test]
    fn stronger_fan_lowers_steady_state() {
        let mut slow = ThermalStack::new(&[(0.25, 20.0), (0.35, 400.0)], amb());
        let mut fast = slow.clone();
        fast.scale_exhaust_resistance(0.5, 0.35);
        slow.advance(50_000.0, 60.0, amb());
        fast.advance(50_000.0, 60.0, amb());
        assert!(fast.source_temperature() < slow.source_temperature());
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn zero_resistance_rejected() {
        RcNode::at_equilibrium(0.0, 10.0, amb());
    }

    #[test]
    fn fast_transient_plus_slow_drift() {
        // The two-stage stack should show a fast die transient (small τ0)
        // riding on a slow sink drift (large τ1) — the shape of the paper's
        // Figure 2(b).
        let mut s = ThermalStack::new(&[(0.25, 4.0), (0.35, 800.0)], amb());
        s.advance(2.0, 60.0, amb());
        let after_fast = s.source_temperature();
        // Fast stage nearly saturated against the still-cool sink:
        assert!(after_fast - amb() > 10.0);
        s.advance(600.0, 60.0, amb());
        // …but long-run drift continues well past the fast transient.
        assert!(s.source_temperature() - after_fast > 5.0);
    }
}
