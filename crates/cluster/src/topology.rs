//! Cluster shape and rank placement.
//!
//! The paper's testbed: "a four node dual-processor, dual-core AMD 1.8GHz
//! Opteron system" — 4 nodes × 2 sockets × 2 cores. NP=4 runs place one
//! rank per node (block placement), which is [`ClusterSpec::paper_cluster`].

/// Where one rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankLocation {
    /// Node index, 0-based.
    pub node: usize,
    /// Core index within the node, 0-based.
    pub core: usize,
}

/// Rank-to-core placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fill nodes one rank at a time, round-robin over nodes first —
    /// spreads NP=4 across 4 nodes (the paper's configuration).
    Spread,
    /// Fill each node's cores completely before moving on.
    Pack,
}

/// The machine: how many nodes and cores, and how ranks map onto them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node (sockets × cores/socket).
    pub cores_per_node: usize,
    /// Placement policy.
    pub placement: Placement,
}

impl ClusterSpec {
    /// The paper's 4-node dual-socket dual-core Opteron cluster with
    /// one-rank-per-node spread placement.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            nodes: 4,
            cores_per_node: 4,
            placement: Placement::Spread,
        }
    }

    /// A custom cluster.
    pub fn new(nodes: usize, cores_per_node: usize, placement: Placement) -> Self {
        assert!(nodes > 0 && cores_per_node > 0);
        ClusterSpec {
            nodes,
            cores_per_node,
            placement,
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Place rank `r` of an `np`-rank job.
    ///
    /// Panics if the job does not fit the machine.
    pub fn place(&self, rank: usize, np: usize) -> RankLocation {
        assert!(rank < np, "rank {rank} out of 0..{np}");
        assert!(
            np <= self.total_cores(),
            "{np} ranks exceed {} cores",
            self.total_cores()
        );
        match self.placement {
            Placement::Spread => {
                // Round-robin over nodes; successive visits to the same
                // node take successive cores.
                RankLocation {
                    node: rank % self.nodes,
                    core: rank / self.nodes,
                }
            }
            Placement::Pack => RankLocation {
                node: rank / self.cores_per_node,
                core: rank % self.cores_per_node,
            },
        }
    }

    /// All ranks placed on `node` in an `np`-rank job.
    pub fn ranks_on_node(&self, node: usize, np: usize) -> Vec<usize> {
        (0..np)
            .filter(|&r| self.place(r, np).node == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_np4_is_one_rank_per_node() {
        let c = ClusterSpec::paper_cluster();
        for r in 0..4 {
            let loc = c.place(r, 4);
            assert_eq!(loc.node, r);
            assert_eq!(loc.core, 0);
        }
    }

    #[test]
    fn spread_wraps_to_second_core() {
        let c = ClusterSpec::paper_cluster();
        let loc = c.place(5, 8);
        assert_eq!(loc.node, 1);
        assert_eq!(loc.core, 1);
    }

    #[test]
    fn pack_fills_nodes_first() {
        let c = ClusterSpec::new(2, 4, Placement::Pack);
        assert_eq!(c.place(0, 8), RankLocation { node: 0, core: 0 });
        assert_eq!(c.place(3, 8), RankLocation { node: 0, core: 3 });
        assert_eq!(c.place(4, 8), RankLocation { node: 1, core: 0 });
    }

    #[test]
    fn ranks_on_node_inverts_place() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.ranks_on_node(2, 8), vec![2, 6]);
        assert_eq!(c.ranks_on_node(0, 4), vec![0]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscription_rejected() {
        ClusterSpec::paper_cluster().place(0, 17);
    }

    #[test]
    fn totals() {
        assert_eq!(ClusterSpec::paper_cluster().total_cores(), 16);
    }
}
