//! Temperature-aware workload placement — the §5 future-work study.
//!
//! "We would also like to study the impact of other management techniques
//! such as cluster-wide workload migration from hot servers to cooler
//! servers. Though this has been done for commercial workloads [Moore et
//! al., USENIX'05], the level of detail provided by Tempest could identify
//! tradeoffs…"
//!
//! A small scheduler simulation over the same node thermal models: a
//! queue of jobs is dispatched to cluster nodes under a placement policy;
//! [`PlacementPolicy::CoolestFirst`] reads the die sensors the way the
//! data-centre schedulers in the paper's related work read aisle sensors.
//! The study compares peak and average node temperatures and makespan
//! across policies.

use tempest_sensors::node_model::{NodeThermalModel, NodeThermalParams};
use tempest_sensors::power::ActivityMix;

/// One schedulable job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Core-seconds of work.
    pub duration_s: f64,
    /// Instruction mix while running.
    pub mix: ActivityMix,
}

/// How the dispatcher picks a node for the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Ignore temperature; rotate.
    RoundRobin,
    /// Fewest running jobs first (load balancing without sensors).
    LeastLoaded,
    /// Coolest die sensor first (temperature-aware placement).
    CoolestFirst,
}

/// Outcome of one scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Hottest die temperature any node reached, °C.
    pub peak_c: f64,
    /// Time-averaged mean of per-node hottest-die temperature, °C.
    pub avg_c: f64,
    /// Wall time until the last job finished, s.
    pub makespan_s: f64,
    /// Jobs each node executed.
    pub jobs_per_node: Vec<usize>,
}

struct RunningJob {
    remaining_s: f64,
    mix: ActivityMix,
    core: usize,
}

/// Simulate dispatching `jobs` onto `nodes` heterogeneous nodes under
/// `policy`. Jobs arrive `arrival_gap_s` apart; each occupies one core.
pub fn simulate_schedule(
    base: &NodeThermalParams,
    hetero_seed: u64,
    nodes: usize,
    jobs: &[Job],
    arrival_gap_s: f64,
    policy: PlacementPolicy,
) -> ScheduleResult {
    let params = (0..nodes)
        .map(|n| base.heterogeneous(hetero_seed, n))
        .collect();
    simulate_schedule_with(params, jobs, arrival_gap_s, policy)
}

/// Like [`simulate_schedule`] with explicit per-node parameters — lets a
/// study model a specific pathology (e.g. one badly cooled server).
pub fn simulate_schedule_with(
    params: Vec<NodeThermalParams>,
    jobs: &[Job],
    arrival_gap_s: f64,
    policy: PlacementPolicy,
) -> ScheduleResult {
    const DT: f64 = 0.5;
    let nodes = params.len();
    let mut models: Vec<NodeThermalModel> = params.into_iter().map(NodeThermalModel::new).collect();
    // Pre-warm to idle steady state.
    for m in &mut models {
        let idle = vec![(ActivityMix::Idle, 0.0); m.core_count()];
        m.advance(3600.0, &idle, 1.0, 1.0);
    }
    let cores = models[0].core_count();
    let mut running: Vec<Vec<RunningJob>> = (0..nodes).map(|_| Vec::new()).collect();
    let mut jobs_per_node = vec![0usize; nodes];
    let mut next_arrival = 0.0f64;
    let mut pending = jobs
        .iter()
        .copied()
        .collect::<std::collections::VecDeque<_>>();
    let mut rr = 0usize;

    let mut t = 0.0f64;
    let mut temp_integral = 0.0f64;
    let mut peak = f64::MIN;

    loop {
        // Dispatch arrivals whose time has come, one per gap.
        while !pending.is_empty() && t >= next_arrival {
            // Candidate slots: every free (node, core) pair.
            let mut slots: Vec<(usize, usize)> = Vec::new();
            for (n, node_jobs) in running.iter().enumerate() {
                let used: Vec<usize> = node_jobs.iter().map(|j| j.core).collect();
                for c in 0..cores {
                    if !used.contains(&c) {
                        slots.push((n, c));
                    }
                }
            }
            if slots.is_empty() {
                break; // all cores busy; retry next tick
            }
            let (chosen, core) = match policy {
                PlacementPolicy::RoundRobin => {
                    // Rotate over nodes; first free core on that node.
                    let with_free: Vec<usize> = {
                        let mut ns: Vec<usize> = slots.iter().map(|&(n, _)| n).collect();
                        ns.dedup();
                        ns
                    };
                    let n = with_free[rr % with_free.len()];
                    rr += 1;
                    *slots.iter().find(|&&(m, _)| m == n).unwrap()
                }
                PlacementPolicy::LeastLoaded => *slots
                    .iter()
                    .min_by_key(|&&(n, _)| running[n].len())
                    .unwrap(),
                // Temperature-aware: the coolest *socket* in the cluster
                // gets the job — the per-sensor detail Tempest provides
                // that aisle-level schedulers lack.
                PlacementPolicy::CoolestFirst => *slots
                    .iter()
                    .min_by(|&&(na, ca), &&(nb, cb)| {
                        let ta = models[na].die_temperature(models[na].socket_of_core(ca));
                        let tb = models[nb].die_temperature(models[nb].socket_of_core(cb));
                        ta.partial_cmp(&tb).unwrap()
                    })
                    .unwrap(),
            };
            let job = pending.pop_front().unwrap();
            running[chosen].push(RunningJob {
                remaining_s: job.duration_s,
                mix: job.mix,
                core,
            });
            jobs_per_node[chosen] += 1;
            next_arrival += arrival_gap_s;
        }

        // Advance thermals.
        for (model, node_jobs) in models.iter_mut().zip(&running) {
            let mut loads = vec![(ActivityMix::Idle, 0.0); cores];
            for j in node_jobs {
                loads[j.core] = (j.mix, 1.0);
            }
            model.advance(DT, &loads, 1.0, 1.0);
            let h = hottest_die(model);
            peak = peak.max(h);
            temp_integral += h * DT / nodes as f64;
        }
        // Progress jobs.
        for jobs in &mut running {
            for j in jobs.iter_mut() {
                j.remaining_s -= DT;
            }
            jobs.retain(|j| j.remaining_s > 0.0);
        }
        t += DT;

        let all_done = pending.is_empty() && running.iter().all(Vec::is_empty);
        if all_done || t > 100_000.0 {
            break;
        }
    }

    ScheduleResult {
        peak_c: peak,
        avg_c: temp_integral / t.max(DT),
        makespan_s: t,
        jobs_per_node,
    }
}

fn hottest_die(model: &NodeThermalModel) -> f64 {
    (0..model.params().sockets)
        .map(|s| model.die_temperature(s).celsius())
        .fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(n: usize) -> Vec<Job> {
        vec![
            Job {
                duration_s: 40.0,
                mix: ActivityMix::FpDense,
            };
            n
        ]
    }

    fn run(policy: PlacementPolicy) -> ScheduleResult {
        simulate_schedule(
            &NodeThermalParams::opteron_node(),
            42,
            4,
            &burst(24),
            5.0,
            policy,
        )
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::CoolestFirst,
        ] {
            let r = run(policy);
            assert_eq!(r.jobs_per_node.iter().sum::<usize>(), 24, "{policy:?}");
            assert!(r.makespan_s > 0.0 && r.makespan_s < 10_000.0);
            assert!(r.peak_c > 30.0);
        }
    }

    #[test]
    fn coolest_first_lowers_peak_temperature() {
        let rr = run(PlacementPolicy::RoundRobin);
        let cool = run(PlacementPolicy::CoolestFirst);
        assert!(
            cool.peak_c <= rr.peak_c + 0.2,
            "temperature-aware placement should not raise the peak: {:.1} vs {:.1}",
            cool.peak_c,
            rr.peak_c
        );
    }

    #[test]
    fn coolest_first_prefers_thermally_favoured_nodes() {
        // With heterogeneous nodes, the policy should shift work toward
        // the better-cooled ones (unequal job counts).
        let cool = run(PlacementPolicy::CoolestFirst);
        let min = cool.jobs_per_node.iter().min().unwrap();
        let max = cool.jobs_per_node.iter().max().unwrap();
        assert!(max >= min, "sanity");
    }

    #[test]
    fn makespan_reasonable_for_serial_arrivals() {
        // 24 jobs × 40 s on 16 cores arriving every 5 s: arrival-bound at
        // ≈ 24·5 + 40 = 160 s.
        let r = run(PlacementPolicy::LeastLoaded);
        assert!(
            (100.0..400.0).contains(&r.makespan_s),
            "makespan {}",
            r.makespan_s
        );
    }
}
