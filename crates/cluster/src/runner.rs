//! One-call orchestration: programs in, per-node Tempest traces out.
//!
//! [`ClusterRun::execute`] runs the engine, replays the thermals, and
//! assembles one [`Trace`] per node — the same artefacts the paper's
//! tool collected from its real cluster ("the profiling information for
//! every node in the cluster along with the timestamps is aggregated into
//! a trace file", §3.2).

use crate::engine::{self, EngineOutput};
use crate::netmodel::NetworkModel;
use crate::program::Program;
use crate::thermal_replay::{replay, NodeReplay, ThermalReplayConfig};
use crate::topology::ClusterSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempest_probe::trace::{NodeMeta, Trace};

/// Full configuration of a simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunConfig {
    /// Machine shape and rank placement.
    pub spec: ClusterSpec,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Thermal/sensor side.
    pub thermal: ThermalReplayConfig,
    /// Half-width of the per-node compute-speed spread (0.01 = ±1 %);
    /// real clusters are never perfectly homogeneous and this small
    /// asymmetry is what staggers rank arrivals at collectives.
    pub node_speed_jitter: f64,
    /// Seed for speed jitter.
    pub seed: u64,
}

impl ClusterRunConfig {
    /// The paper's testbed: 4 Opteron nodes, gigabit-class interconnect,
    /// 6-sensor platform, heterogeneous thermals, 4 Hz tempd.
    pub fn paper_default() -> Self {
        ClusterRunConfig {
            spec: ClusterSpec::paper_cluster(),
            net: NetworkModel::gigabit_ethernet(),
            thermal: ThermalReplayConfig::default(),
            node_speed_jitter: 0.01,
            seed: 0x7E47E5,
        }
    }
}

/// The artefacts of one simulated run.
#[derive(Debug)]
pub struct ClusterRun {
    /// One trace per node, ready for `tempest-core`'s parser.
    pub traces: Vec<Trace>,
    /// Raw engine output (timings, comm fractions, segments).
    pub engine: EngineOutput,
    /// Raw thermal replays (samples + ground truth per node).
    pub replays: Vec<NodeReplay>,
}

impl ClusterRun {
    /// Execute `programs` (one per rank) under `cfg`.
    pub fn execute(cfg: &ClusterRunConfig, programs: &[Program]) -> ClusterRun {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let j = cfg.node_speed_jitter.abs();
        let node_speed: Vec<f64> = (0..cfg.spec.nodes)
            .map(|_| {
                if j > 0.0 {
                    rng.gen_range(1.0 - j..1.0 + j)
                } else {
                    1.0
                }
            })
            .collect();

        let engine_out = engine::run(&cfg.spec, &cfg.net, programs, &node_speed);
        let replays = replay(
            &cfg.spec,
            &engine_out.segments,
            engine_out.end_ns,
            &cfg.thermal,
        );

        let np = programs.len();
        let traces = (0..cfg.spec.nodes)
            .map(|node| {
                // Merge the event streams of every rank on this node.
                let mut events: Vec<tempest_probe::event::Event> = cfg
                    .spec
                    .ranks_on_node(node, np)
                    .into_iter()
                    .flat_map(|r| engine_out.events_per_rank[r].iter().copied())
                    .collect();
                events.sort_by_key(|e| e.timestamp_ns);
                Trace {
                    node: NodeMeta {
                        node_id: node as u32,
                        hostname: format!("node{}", node + 1),
                        sensors: replays[node].sensor_meta.clone(),
                    },
                    functions: engine_out.node_registries[node].snapshot(),
                    events,
                    samples: replays[node].samples.clone(),
                }
            })
            .collect();

        ClusterRun {
            traces,
            engine: engine_out,
            replays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_sensors::power::ActivityMix;

    fn burn_program(secs: f64) -> Program {
        Program::builder()
            .call("main", |b| {
                b.call("burn_loop", |b| b.compute(secs, ActivityMix::FpDense))
            })
            .build()
    }

    fn quick_cfg() -> ClusterRunConfig {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        cfg
    }

    #[test]
    fn produces_one_trace_per_node() {
        let cfg = quick_cfg();
        let programs = vec![burn_program(5.0); 4];
        let run = ClusterRun::execute(&cfg, &programs);
        assert_eq!(run.traces.len(), 4);
        for (i, t) in run.traces.iter().enumerate() {
            assert_eq!(t.node.node_id, i as u32);
            assert_eq!(t.node.hostname, format!("node{}", i + 1));
            assert_eq!(t.events.len(), 4); // main + burn_loop enter/exit
            assert!(!t.samples.is_empty());
            assert_eq!(t.node.sensors.len(), 6);
        }
    }

    #[test]
    fn traces_parse_through_the_tempest_pipeline() {
        // Round-trip: simulated trace → binary file → back → spans agree.
        let cfg = quick_cfg();
        let programs = vec![burn_program(2.0); 4];
        let run = ClusterRun::execute(&cfg, &programs);
        let t = &run.traces[0];
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = tempest_probe::trace::Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(&back, t);
    }

    #[test]
    fn node_speed_jitter_staggers_rank_finish_times() {
        let cfg = quick_cfg();
        let programs = vec![burn_program(10.0); 4];
        let run = ClusterRun::execute(&cfg, &programs);
        let ends = &run.engine.rank_end_ns;
        let min = ends.iter().min().unwrap();
        let max = ends.iter().max().unwrap();
        assert!(max > min, "jitter should stagger finishes: {ends:?}");
        // …but by at most ~2 % of runtime.
        assert!(((max - min) as f64) / (*max as f64) < 0.05);
    }

    #[test]
    fn zero_jitter_is_deterministic_and_symmetric() {
        let mut cfg = quick_cfg();
        cfg.node_speed_jitter = 0.0;
        cfg.thermal.hetero_seed = None;
        let programs = vec![burn_program(3.0); 4];
        let a = ClusterRun::execute(&cfg, &programs);
        let b = ClusterRun::execute(&cfg, &programs);
        assert_eq!(a.traces, b.traces, "simulation must be deterministic");
        let ends = &a.engine.rank_end_ns;
        assert!(ends.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn multirank_per_node_merges_events() {
        let mut cfg = quick_cfg();
        cfg.spec = ClusterSpec::new(2, 4, crate::topology::Placement::Spread);
        let programs = vec![burn_program(1.0); 4]; // ranks 0,2 → node 0
        let run = ClusterRun::execute(&cfg, &programs);
        assert_eq!(run.traces[0].events.len(), 8);
        // Events are time-sorted after the merge.
        let ts: Vec<u64> = run.traces[0]
            .events
            .iter()
            .map(|e| e.timestamp_ns)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
