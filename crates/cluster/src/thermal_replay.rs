//! Thermal replay: load segments → sensor samples.
//!
//! After the engine has decided *when* every core was busy, this pass
//! decides *how hot* that made each node. It advances every node's
//! [`NodeThermalModel`] across the piecewise-constant load function the
//! engine produced and takes `tempd` samples on the virtual clock —
//! playing, for the simulated cluster, exactly the role the real `tempd`
//! plays on real hardware.

use crate::engine::LoadSegment;
use crate::topology::ClusterSpec;
use std::collections::BTreeSet;
use tempest_probe::trace::SensorMeta;
use tempest_sensors::node_model::{NodeThermalModel, NodeThermalParams};
use tempest_sensors::platform::PlatformSpec;
use tempest_sensors::power::ActivityMix;
use tempest_sensors::sim::SimulatedSensorBank;
use tempest_sensors::source::SensorSource;
use tempest_sensors::{SensorReading, Temperature};

/// Configuration of the thermal side of a simulated run.
#[derive(Debug, Clone)]
pub struct ThermalReplayConfig {
    /// Baseline node parameters (before per-node spread).
    pub base_params: NodeThermalParams,
    /// Sensor inventory each node exposes.
    pub platform: PlatformSpec,
    /// Per-node parameter spread seed; `None` makes all nodes identical
    /// (useful in tests that need determinism across nodes).
    pub hetero_seed: Option<u64>,
    /// Gaussian sensor noise σ, °C (0 = noiseless).
    pub noise_sigma_c: f64,
    /// Sampling interval of the simulated tempd, ns (paper: 250 ms).
    pub sample_interval_ns: u64,
    /// Seed for the per-sensor noise streams.
    pub noise_seed: u64,
    /// Bring every node to *idle* thermal steady state before t=0. This is
    /// what the paper's testbed looked like: machines powered on and idle
    /// before `mpirun` ("we allowed the system to return to a steady
    /// state … after every test", §4.1). Cold-from-ambient starts would
    /// put a spurious warm-up ramp at the head of every figure.
    pub prewarm_idle: bool,
}

impl Default for ThermalReplayConfig {
    fn default() -> Self {
        ThermalReplayConfig {
            base_params: NodeThermalParams::opteron_node(),
            platform: PlatformSpec::opteron_full(),
            hetero_seed: Some(0x7E_3A57),
            noise_sigma_c: 0.15,
            sample_interval_ns: 250_000_000,
            noise_seed: 0xC0FFEE,
            prewarm_idle: true,
        }
    }
}

/// One node's thermal record from a replay.
#[derive(Debug, Clone)]
pub struct NodeReplay {
    /// tempd samples on the shared time axis.
    pub samples: Vec<SensorReading>,
    /// Unquantised, noise-free ground truth at every sampling instant
    /// (timestamp, one value per sensor) — the §3.4 external reference.
    pub ground_truth: Vec<(u64, Vec<Temperature>)>,
    /// Sensor metadata for the trace header.
    pub sensor_meta: Vec<SensorMeta>,
}

/// Integrate `segments` through each node's thermal model from t=0 to
/// `end_ns`, sampling every `cfg.sample_interval_ns`.
pub fn replay(
    spec: &ClusterSpec,
    segments: &[LoadSegment],
    end_ns: u64,
    cfg: &ThermalReplayConfig,
) -> Vec<NodeReplay> {
    (0..spec.nodes)
        .map(|node| {
            let params = match cfg.hetero_seed {
                Some(seed) => cfg.base_params.heterogeneous(seed, node),
                None => cfg.base_params.clone(),
            };
            let model = NodeThermalModel::new(params);
            let mut bank = SimulatedSensorBank::new(
                cfg.platform.clone(),
                model,
                cfg.noise_seed.wrapping_add(node as u64 * 1_000_003),
                cfg.noise_sigma_c,
            );
            let node_segments: Vec<&LoadSegment> =
                segments.iter().filter(|s| s.node == node).collect();
            replay_node(node, &node_segments, end_ns, cfg, &mut bank)
        })
        .collect()
}

fn replay_node(
    _node: usize,
    segments: &[&LoadSegment],
    end_ns: u64,
    cfg: &ThermalReplayConfig,
    bank: &mut SimulatedSensorBank,
) -> NodeReplay {
    let cores = bank.model().core_count();

    if cfg.prewarm_idle {
        // Charge every thermal mass to its idle steady state (≥10 time
        // constants of the slowest stage, the board at τ ≈ 6 min).
        let idle = vec![(ActivityMix::Idle, 0.0); cores];
        bank.model_mut().advance(3600.0, &idle, 1.0, 1.0);
    }

    // Per-core segment lists, sorted by start (a core runs sequentially,
    // so its segments never overlap).
    let mut per_core: Vec<Vec<&LoadSegment>> = vec![Vec::new(); cores];
    for s in segments {
        assert!(
            s.core < cores,
            "segment on core {} of a {cores}-core node",
            s.core
        );
        per_core[s.core].push(s);
    }
    for list in &mut per_core {
        list.sort_by_key(|s| s.start_ns);
        debug_assert!(
            list.windows(2).all(|w| w[0].end_ns <= w[1].start_ns),
            "overlapping segments on one core"
        );
    }
    let mut cursor = vec![0usize; cores];

    // Time grid: all segment boundaries plus sampling instants.
    let mut boundaries: BTreeSet<u64> = BTreeSet::new();
    boundaries.insert(0);
    boundaries.insert(end_ns);
    for s in segments {
        boundaries.insert(s.start_ns);
        boundaries.insert(s.end_ns.min(end_ns));
    }
    let mut t = 0u64;
    while t <= end_ns {
        boundaries.insert(t);
        t += cfg.sample_interval_ns;
    }

    let mut samples = Vec::new();
    let mut ground_truth = Vec::new();
    let grid: Vec<u64> = boundaries.into_iter().collect();

    // Take the t=0 sample before any load is applied.
    let maybe_sample = |bank: &mut SimulatedSensorBank,
                        t: u64,
                        samples: &mut Vec<SensorReading>,
                        truth: &mut Vec<(u64, Vec<Temperature>)>| {
        if t.is_multiple_of(cfg.sample_interval_ns) && t <= end_ns {
            bank.sample_into(t, samples);
            truth.push((t, bank.last_ground_truth().to_vec()));
        }
    };
    maybe_sample(bank, 0, &mut samples, &mut ground_truth);

    for w in grid.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > end_ns {
            break;
        }
        let dt_s = (b - a) as f64 / 1e9;
        if dt_s > 0.0 {
            // Active load per core over [a, b).
            let loads: Vec<(ActivityMix, f64)> = (0..cores)
                .map(|c| {
                    // Advance the cursor past segments that ended.
                    while cursor[c] < per_core[c].len() && per_core[c][cursor[c]].end_ns <= a {
                        cursor[c] += 1;
                    }
                    match per_core[c].get(cursor[c]) {
                        Some(s) if s.start_ns <= a && s.end_ns >= b => {
                            (s.mix, s.utilization * s.dvfs_dynamic)
                        }
                        _ => (ActivityMix::Idle, 0.0),
                    }
                })
                .collect();
            bank.model_mut().advance(dt_s, &loads, 1.0, 1.0);
        }
        maybe_sample(bank, b, &mut samples, &mut ground_truth);
    }

    let sensor_meta = bank
        .platform()
        .sensors
        .iter()
        .zip(bank.sensors())
        .map(|(spec, info)| SensorMeta {
            id: info.id,
            label: spec.label.clone(),
            kind: spec.kind,
        })
        .collect();

    NodeReplay {
        samples,
        ground_truth,
        sensor_meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Placement;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(2, 4, Placement::Spread)
    }

    fn burn_segment(node: usize, secs: f64) -> LoadSegment {
        LoadSegment {
            node,
            core: 0,
            start_ns: 0,
            end_ns: crate::time::secs_to_ns(secs),
            mix: ActivityMix::FpDense,
            utilization: 1.0,
            dvfs_dynamic: 1.0,
        }
    }

    fn cfg() -> ThermalReplayConfig {
        ThermalReplayConfig {
            hetero_seed: None,
            noise_sigma_c: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn sampling_cadence_matches_interval() {
        let out = replay(&spec(), &[burn_segment(0, 10.0)], 10_000_000_000, &cfg());
        assert_eq!(out.len(), 2);
        let sensors = 6; // opteron_full
                         // Samples at t = 0, 0.25, …, 10.0 → 41 rounds.
        assert_eq!(out[0].samples.len(), 41 * sensors);
        // Timestamps are multiples of the interval.
        assert!(out[0]
            .samples
            .iter()
            .all(|s| s.timestamp_ns % 250_000_000 == 0));
    }

    #[test]
    fn busy_node_runs_hotter_than_idle_node() {
        let out = replay(&spec(), &[burn_segment(0, 60.0)], 60_000_000_000, &cfg());
        let die_avg = |r: &NodeReplay| {
            let die: Vec<f64> = r
                .samples
                .iter()
                .filter(|s| s.sensor.0 == 3) // CPU0 die in opteron_full
                .map(|s| s.temperature.celsius())
                .collect();
            die.iter().sum::<f64>() / die.len() as f64
        };
        assert!(
            die_avg(&out[0]) > die_avg(&out[1]) + 3.0,
            "busy {} vs idle {}",
            die_avg(&out[0]),
            die_avg(&out[1])
        );
    }

    #[test]
    fn temperature_rises_during_burn_then_falls() {
        // Burn 30 s then idle 30 s.
        let out = replay(&spec(), &[burn_segment(0, 30.0)], 60_000_000_000, &cfg());
        let die: Vec<(u64, f64)> = out[0]
            .samples
            .iter()
            .filter(|s| s.sensor.0 == 3)
            .map(|s| (s.timestamp_ns, s.temperature.celsius()))
            .collect();
        let at = |t: u64| die.iter().find(|&&(ts, _)| ts == t).unwrap().1;
        assert!(at(30_000_000_000) > at(0) + 5.0, "warmed during burn");
        // Idle power keeps the node a few degrees above ambient, so the
        // post-burn drop is modest (the paper's Figure 2(b) shows the same
        // partial cool-down while foo2's timer runs).
        assert!(
            at(60_000_000_000) < at(30_000_000_000) - 1.0,
            "cooled after"
        );
    }

    #[test]
    fn ground_truth_aligns_with_samples() {
        let out = replay(&spec(), &[burn_segment(0, 5.0)], 5_000_000_000, &cfg());
        let rounds = out[0].ground_truth.len();
        assert_eq!(rounds, 21);
        assert_eq!(out[0].samples.len(), rounds * 6);
        for (i, (ts, truth)) in out[0].ground_truth.iter().enumerate() {
            assert_eq!(truth.len(), 6);
            assert_eq!(out[0].samples[i * 6].timestamp_ns, *ts);
            // Quantised reading within 0.75 °C of truth (noise off).
            for (k, t) in truth.iter().enumerate() {
                let err = (out[0].samples[i * 6 + k].temperature - *t).abs();
                assert!(err <= 0.75, "sensor {k} err {err}");
            }
        }
    }

    #[test]
    fn heterogeneous_nodes_diverge_identical_load() {
        let cfg = ThermalReplayConfig {
            hetero_seed: Some(42),
            noise_sigma_c: 0.0,
            ..Default::default()
        };
        let spec4 = ClusterSpec::new(4, 4, Placement::Spread);
        let segs: Vec<LoadSegment> = (0..4).map(|n| burn_segment(n, 120.0)).collect();
        let out = replay(&spec4, &segs, 120_000_000_000, &cfg);
        let finals: Vec<f64> = out
            .iter()
            .map(|r| {
                r.samples
                    .iter()
                    .rfind(|s| s.sensor.0 == 3)
                    .unwrap()
                    .temperature
                    .fahrenheit()
            })
            .collect();
        let spread = finals.iter().cloned().fold(f64::MIN, f64::max)
            - finals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 2.0,
            "per-node spread {spread} °F too small: {finals:?}"
        );
    }

    #[test]
    fn sensor_meta_matches_platform() {
        let out = replay(&spec(), &[], 1_000_000_000, &cfg());
        assert_eq!(out[0].sensor_meta.len(), 6);
        assert_eq!(out[0].sensor_meta[3].label, "CPU0 die");
    }

    #[test]
    #[should_panic(expected = "core")]
    fn segment_on_missing_core_panics() {
        let seg = LoadSegment {
            core: 99,
            ..burn_segment(0, 1.0)
        };
        replay(&spec(), &[seg], 1_000_000_000, &cfg());
    }
}
