//! Thermal-feedback co-simulation.
//!
//! §4.1: the paper *disables* DVFS and automatic fan regulation "to
//! circumvent all thermal feedback effects", and §5 proposes studying
//! runtime thermal management as future work. This module implements the
//! feedback loop the paper switched off, so the reproduction can run both
//! configurations: [`feedback_replay`] advances the node thermal model
//! *while* a thermal governor watches the die sensors and adjusts the
//! DVFS state and fan speed, which in turn changes power and cooling for
//! the next interval.
//!
//! Timing feedback (throttled compute taking longer) is modelled too:
//! the replay reports a *time-dilation factor* per node, the ratio by
//! which compute under the governor would stretch. The experiment
//! binaries use it to quote the performance cost of the feedback policy.

use crate::engine::LoadSegment;
use crate::topology::ClusterSpec;
use std::collections::BTreeSet;
use tempest_sensors::dvfs::{Dvfs, Governor};
use tempest_sensors::fan::{Fan, FanPolicy};
use tempest_sensors::node_model::NodeThermalModel;
use tempest_sensors::power::ActivityMix;
use tempest_sensors::{SensorReading, Temperature};

/// Feedback configuration: what the governor watches and does.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// DVFS governor (the paper's experiments use `Performance`; the
    /// feedback study uses `ThermalThrottle`).
    pub governor: Governor,
    /// Fan policy (paper: fixed 3000 RPM).
    pub fan: FanPolicy,
    /// How often the governor samples and acts, seconds (real governors
    /// run at ~1 Hz).
    pub control_period_s: f64,
}

impl FeedbackConfig {
    /// The paper's §4.1 configuration: everything pinned.
    pub fn disabled() -> Self {
        FeedbackConfig {
            governor: Governor::Performance,
            fan: FanPolicy::Fixed { rpm: 3000.0 },
            control_period_s: 1.0,
        }
    }

    /// A thermally managed configuration: throttle above `trip_c`,
    /// thermostat fan.
    pub fn managed(trip_c: f64) -> Self {
        FeedbackConfig {
            governor: Governor::ThermalThrottle {
                trip_c,
                hysteresis_c: 3.0,
            },
            fan: FanPolicy::Thermostat {
                low_c: trip_c - 15.0,
                high_c: trip_c + 5.0,
                min_rpm: 1200.0,
                max_rpm: 3000.0,
            },
            control_period_s: 1.0,
        }
    }
}

/// Results of a feedback replay for one node.
#[derive(Debug, Clone)]
pub struct FeedbackNodeResult {
    /// Die-sensor samples (socket 0) on the sampling cadence, quantised
    /// like the normal replay path.
    pub die_samples: Vec<SensorReading>,
    /// Peak die temperature over the run.
    pub peak: Temperature,
    /// Fraction of control periods spent below the top P-state.
    pub throttled_fraction: f64,
    /// Estimated execution-time dilation from throttling: the busy-time
    /// weighted mean of `1/perf_scale`.
    pub time_dilation: f64,
}

/// Replay `segments` through node `node`'s model under a feedback policy.
///
/// This is deliberately a per-node analysis (the engine's timing is not
/// re-run): it answers "what would this node's thermals and slowdown look
/// like under policy X", the §5 study.
pub fn feedback_replay(
    spec: &ClusterSpec,
    segments: &[LoadSegment],
    end_ns: u64,
    node: usize,
    mut model: NodeThermalModel,
    cfg: &FeedbackConfig,
) -> FeedbackNodeResult {
    let cores = model.core_count();
    let mut dvfs = Dvfs::new(tempest_sensors::dvfs::opteron_pstates(), cfg.governor);
    let mut fan = Fan::new(cfg.fan, 3000.0);

    // Pre-warm at idle like the normal replay.
    let idle = vec![(ActivityMix::Idle, 0.0); cores];
    model.advance(3600.0, &idle, 1.0, 1.0);

    let node_segments: Vec<&LoadSegment> = segments.iter().filter(|s| s.node == node).collect();
    let mut per_core: Vec<Vec<&LoadSegment>> = vec![Vec::new(); cores];
    for s in &node_segments {
        per_core[s.core.min(cores - 1)].push(s);
    }
    for list in &mut per_core {
        list.sort_by_key(|s| s.start_ns);
    }

    // Control grid: every control period plus segment boundaries.
    let control_ns = (cfg.control_period_s * 1e9) as u64;
    let mut grid: BTreeSet<u64> = BTreeSet::new();
    grid.insert(0);
    grid.insert(end_ns);
    let mut t = 0;
    while t <= end_ns {
        grid.insert(t);
        t += control_ns.max(1_000_000);
    }
    for s in &node_segments {
        grid.insert(s.start_ns);
        grid.insert(s.end_ns.min(end_ns));
    }

    let mut cursor = vec![0usize; cores];
    let mut die_samples = Vec::new();
    let mut peak = model.die_temperature(0);
    let mut throttled_periods = 0usize;
    let mut total_periods = 0usize;
    let mut busy_ns = 0u64;
    let mut dilated_ns = 0.0f64;

    let grid: Vec<u64> = grid.into_iter().collect();
    for w in grid.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > end_ns {
            break;
        }
        let dt_s = (b - a) as f64 / 1e9;
        if dt_s <= 0.0 {
            continue;
        }
        // Governor acts on the hottest die.
        let hottest = (0..model.params().sockets)
            .map(|s| model.die_temperature(s).celsius())
            .fold(f64::MIN, f64::max);
        dvfs.update(hottest);
        fan.update(hottest);
        total_periods += 1;
        if dvfs.state_index() + 1 < tempest_sensors::dvfs::opteron_pstates().len() {
            throttled_periods += 1;
        }

        let loads: Vec<(ActivityMix, f64)> = (0..cores)
            .map(|c| {
                while cursor[c] < per_core[c].len() && per_core[c][cursor[c]].end_ns <= a {
                    cursor[c] += 1;
                }
                match per_core[c].get(cursor[c]) {
                    Some(s) if s.start_ns <= a && s.end_ns >= b => (s.mix, s.utilization),
                    _ => (ActivityMix::Idle, 0.0),
                }
            })
            .collect();
        let any_busy = loads.iter().any(|(m, _)| !matches!(m, ActivityMix::Idle));
        if any_busy {
            busy_ns += b - a;
            dilated_ns += (b - a) as f64 / dvfs.perf_scale();
        }
        model.advance(dt_s, &loads, dvfs.dynamic_scale(), dvfs.static_scale());

        let die = model.die_temperature(0);
        peak = peak.max(die);
        if a % 250_000_000 == 0 {
            die_samples.push(SensorReading::new(
                tempest_sensors::SensorId(0),
                a,
                tempest_sensors::Quantization::CPU_GRID.apply(die),
            ));
        }
    }
    let _ = spec;

    FeedbackNodeResult {
        die_samples,
        peak,
        throttled_fraction: if total_periods == 0 {
            0.0
        } else {
            throttled_periods as f64 / total_periods as f64
        },
        time_dilation: if busy_ns == 0 {
            1.0
        } else {
            dilated_ns / busy_ns as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Placement;
    use tempest_sensors::node_model::NodeThermalParams;

    fn burn_segments(secs: f64) -> Vec<LoadSegment> {
        (0..4)
            .map(|core| LoadSegment {
                node: 0,
                core,
                start_ns: 0,
                end_ns: (secs * 1e9) as u64,
                mix: ActivityMix::FpDense,
                utilization: 1.0,
                dvfs_dynamic: 1.0,
            })
            .collect()
    }

    fn run(cfg: FeedbackConfig) -> FeedbackNodeResult {
        feedback_replay(
            &ClusterSpec::new(1, 4, Placement::Spread),
            &burn_segments(240.0),
            240_000_000_000,
            0,
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            &cfg,
        )
    }

    #[test]
    fn disabled_feedback_never_throttles() {
        let r = run(FeedbackConfig::disabled());
        assert_eq!(r.throttled_fraction, 0.0);
        assert_eq!(r.time_dilation, 1.0);
        // All-core burn at max frequency gets hot.
        assert!(r.peak.celsius() > 45.0, "peak {}", r.peak.celsius());
    }

    #[test]
    fn managed_feedback_caps_temperature_and_costs_time() {
        let disabled = run(FeedbackConfig::disabled());
        let managed = run(FeedbackConfig::managed(45.0));
        assert!(
            managed.peak < disabled.peak,
            "governor should cap the peak: {} !< {}",
            managed.peak.celsius(),
            disabled.peak.celsius()
        );
        assert!(managed.throttled_fraction > 0.0);
        assert!(managed.time_dilation > 1.0, "throttling must cost time");
    }

    #[test]
    fn governor_holds_near_trip_point() {
        let managed = run(FeedbackConfig::managed(42.0));
        // Peak overshoots the trip by at most a few degrees (control lag).
        assert!(
            managed.peak.celsius() < 42.0 + 5.0,
            "peak {} too far above trip",
            managed.peak.celsius()
        );
    }

    #[test]
    fn idle_workload_is_unaffected_by_policy() {
        let r = feedback_replay(
            &ClusterSpec::new(1, 4, Placement::Spread),
            &[],
            60_000_000_000,
            0,
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            &FeedbackConfig::managed(45.0),
        );
        assert_eq!(r.time_dilation, 1.0);
        assert!(r.peak.celsius() < 40.0);
    }
}
