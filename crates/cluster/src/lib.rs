#![warn(missing_docs)]
//! # tempest-cluster
//!
//! The cluster substrate of the Tempest reproduction.
//!
//! The paper profiled NAS Parallel Benchmarks on a real four-node
//! dual-processor dual-core Opteron cluster. Nothing like that exists in
//! this environment, so this crate simulates one — *at the level Tempest
//! observes it*: MPI ranks running phase programs, per-core activity
//! driving per-socket power, power driving the RC thermal models of
//! `tempest-sensors`, and a simulated `tempd` sampling each node's sensor
//! bank four times a second. The output is a set of per-node
//! [`tempest_probe::trace::Trace`]s indistinguishable in structure from
//! native ones, so the entire parser/report pipeline is exercised
//! unchanged.
//!
//! Modules:
//!
//! * [`time`] — simulated-time helpers (nanosecond `u64` axis).
//! * [`topology`] — cluster shape and rank placement.
//! * [`netmodel`] — latency/bandwidth cost model for collectives and
//!   point-to-point messages (a LogP-flavoured model).
//! * [`program`] — the phase-program DSL ranks execute: timed compute
//!   blocks with an instruction mix, named function scopes, barriers,
//!   all-to-all, all-reduce, and send/recv.
//! * [`engine`] — the discrete-event executor: advances ranks, resolves
//!   collectives, and emits function events plus per-core load segments.
//! * [`thermal_replay`] — integrates load segments through each node's
//!   thermal model and takes tempd samples on the virtual clock.
//! * [`runner`] — one-call orchestration: programs in, traces out.

pub mod engine;
pub mod feedback;
pub mod migration;
pub mod netmodel;
pub mod program;
pub mod runner;
pub mod thermal_replay;
pub mod time;
pub mod topology;

pub use engine::{EngineOutput, LoadSegment};
pub use netmodel::NetworkModel;
pub use program::{Op, Program, ProgramBuilder};
pub use runner::{ClusterRun, ClusterRunConfig};
pub use time::{ns_to_secs, secs_to_ns};
pub use topology::{ClusterSpec, Placement, RankLocation};
