//! The phase-program DSL.
//!
//! A rank's behaviour is a flat list of [`Op`]s: timed compute blocks
//! carrying an instruction mix (which drives power), named function scopes
//! (which produce the entry/exit events Tempest instruments), and
//! communication operations (which block on other ranks through the cost
//! model). NAS benchmark models in `tempest-workloads` are built from this
//! DSL; micro-benchmarks and ad-hoc tests build theirs with
//! [`ProgramBuilder`].

use tempest_sensors::power::ActivityMix;

/// One step of a rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Enter a named function scope (records an `Enter` event).
    CallEnter(String),
    /// Leave the innermost open scope (records an `Exit` event).
    CallExit,
    /// Busy the core for `duration_ns` (at nominal frequency) with the
    /// given instruction mix. `speed_scale` stretches the duration
    /// (1.0 = nominal; 0.5 = running at half frequency takes 2×).
    Compute {
        /// Busy time at nominal frequency, ns.
        duration_ns: u64,
        /// Instruction mix (drives power).
        mix: ActivityMix,
        /// Frequency scale the block runs at (DVFS); < 1.0 stretches time
        /// and shrinks power.
        speed_scale: f64,
    },
    /// Sleep without computing (timer wait — the paper's foo2).
    Sleep {
        /// Wait length, ns.
        duration_ns: u64,
    },
    /// Barrier across all ranks.
    Barrier,
    /// All-to-all exchange; each pair exchanges `bytes_per_pair`.
    AllToAll {
        /// Payload exchanged between each rank pair.
        bytes_per_pair: u64,
    },
    /// All-reduce of `bytes`.
    AllReduce {
        /// Reduced payload size.
        bytes: u64,
    },
    /// Send `bytes` to `to` (buffered, non-blocking).
    Send {
        /// Destination rank.
        to: usize,
        /// Message size.
        bytes: u64,
    },
    /// Receive from `from` (blocks until the matching send's data lands).
    Recv {
        /// Source rank.
        from: usize,
    },
}

/// A rank's full program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The rank's steps, in execution order.
    pub ops: Vec<Op>,
}

impl Program {
    /// Builder entry point.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Total nominal compute+sleep time, ns (communication excluded) —
    /// a lower bound on the rank's runtime.
    pub fn nominal_busy_ns(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute {
                    duration_ns,
                    speed_scale,
                    ..
                } => (*duration_ns as f64 / speed_scale.max(1e-9)) as u64,
                Op::Sleep { duration_ns } => *duration_ns,
                _ => 0,
            })
            .sum()
    }

    /// Check scope balance: every `CallEnter` has a matching `CallExit`
    /// and exits never underflow.
    pub fn scopes_balanced(&self) -> bool {
        let mut depth = 0i64;
        for op in &self.ops {
            match op {
                Op::CallEnter(_) => depth += 1,
                Op::CallExit => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0
    }

    /// Rewrite: run every compute block inside function scopes named
    /// `function` at `speed_scale` — the DVFS-on-a-hot-function
    /// transformation used by the thermal-optimisation experiment (E12).
    pub fn with_dvfs_on(&self, function: &str, speed_scale: f64) -> Program {
        let mut depth_in_target = 0usize;
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                Op::CallEnter(name) => {
                    if name == function || depth_in_target > 0 {
                        depth_in_target += 1;
                    }
                    op.clone()
                }
                Op::CallExit => {
                    depth_in_target = depth_in_target.saturating_sub(1);
                    op.clone()
                }
                Op::Compute {
                    duration_ns, mix, ..
                } if depth_in_target > 0 => Op::Compute {
                    duration_ns: *duration_ns,
                    mix: *mix,
                    speed_scale,
                },
                _ => op.clone(),
            })
            .collect();
        Program { ops }
    }
}

/// Fluent builder for [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    depth: usize,
}

impl ProgramBuilder {
    /// Open a named function scope; close it with [`Self::ret`] or by
    /// using [`Self::call`].
    pub fn enter(mut self, name: &str) -> Self {
        self.ops.push(Op::CallEnter(name.to_string()));
        self.depth += 1;
        self
    }

    /// Close the innermost scope.
    pub fn ret(mut self) -> Self {
        assert!(self.depth > 0, "ret without matching enter");
        self.ops.push(Op::CallExit);
        self.depth -= 1;
        self
    }

    /// A whole function call: enter `name`, run `body`, exit.
    pub fn call(mut self, name: &str, body: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> Self {
        self = self.enter(name);
        self = body(self);
        self.ret()
    }

    /// Compute for `secs` seconds at the given mix (nominal speed).
    pub fn compute(mut self, secs: f64, mix: ActivityMix) -> Self {
        self.ops.push(Op::Compute {
            duration_ns: crate::time::secs_to_ns(secs),
            mix,
            speed_scale: 1.0,
        });
        self
    }

    /// Compute for `ms` milliseconds.
    pub fn compute_ms(self, ms: f64, mix: ActivityMix) -> Self {
        self.compute(ms / 1e3, mix)
    }

    /// Sleep (timer wait) for `secs` seconds.
    pub fn sleep(mut self, secs: f64) -> Self {
        self.ops.push(Op::Sleep {
            duration_ns: crate::time::secs_to_ns(secs),
        });
        self
    }

    /// Barrier.
    pub fn barrier(mut self) -> Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// All-to-all with `bytes_per_pair` per rank pair.
    pub fn alltoall(mut self, bytes_per_pair: u64) -> Self {
        self.ops.push(Op::AllToAll { bytes_per_pair });
        self
    }

    /// All-reduce of `bytes`.
    pub fn allreduce(mut self, bytes: u64) -> Self {
        self.ops.push(Op::AllReduce { bytes });
        self
    }

    /// Send to a rank.
    pub fn send(mut self, to: usize, bytes: u64) -> Self {
        self.ops.push(Op::Send { to, bytes });
        self
    }

    /// Receive from a rank.
    pub fn recv(mut self, from: usize) -> Self {
        self.ops.push(Op::Recv { from });
        self
    }

    /// Repeat a block `n` times.
    pub fn repeat(mut self, n: usize, body: impl Fn(ProgramBuilder) -> ProgramBuilder) -> Self {
        for _ in 0..n {
            self = body(self);
        }
        self
    }

    /// Finish; panics if scopes are unbalanced (a builder bug in the
    /// caller, better caught at build time than as parser warnings).
    pub fn build(self) -> Program {
        assert_eq!(self.depth, 0, "unbalanced scopes in program");
        Program { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_balanced_scopes() {
        let p = Program::builder()
            .call("main", |b| {
                b.call("foo1", |b| b.compute(1.0, ActivityMix::FpDense))
                    .call("foo2", |b| b.sleep(0.5))
            })
            .build();
        assert!(p.scopes_balanced());
        assert_eq!(p.ops.len(), 8);
        assert_eq!(p.nominal_busy_ns(), 1_500_000_000);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_build_panics() {
        let _ = Program::builder().enter("main").build();
    }

    #[test]
    #[should_panic(expected = "ret without")]
    fn underflow_ret_panics() {
        let _ = Program::builder().ret();
    }

    #[test]
    fn scopes_balanced_detects_underflow() {
        let p = Program {
            ops: vec![Op::CallExit, Op::CallEnter("x".into())],
        };
        assert!(!p.scopes_balanced());
    }

    #[test]
    fn repeat_unrolls() {
        let p = Program::builder()
            .call("main", |b| {
                b.repeat(3, |b| {
                    b.call("iter", |b| b.compute_ms(10.0, ActivityMix::Balanced))
                })
            })
            .build();
        let iters = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::CallEnter(n) if n == "iter"))
            .count();
        assert_eq!(iters, 3);
        assert_eq!(p.nominal_busy_ns(), 30_000_000);
    }

    #[test]
    fn dvfs_rewrite_targets_only_named_function() {
        let p = Program::builder()
            .call("main", |b| {
                b.call("hot", |b| b.compute(1.0, ActivityMix::FpDense))
                    .call("cool", |b| b.compute(1.0, ActivityMix::Balanced))
            })
            .build();
        let q = p.with_dvfs_on("hot", 0.5);
        let scales: Vec<f64> = q
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute { speed_scale, .. } => Some(*speed_scale),
                _ => None,
            })
            .collect();
        assert_eq!(scales, vec![0.5, 1.0]);
        // Slowing the hot function stretches nominal busy time.
        assert!(q.nominal_busy_ns() > p.nominal_busy_ns());
    }

    #[test]
    fn dvfs_rewrite_covers_nested_scopes() {
        let p = Program::builder()
            .call("hot", |b| {
                b.call("inner", |b| b.compute(1.0, ActivityMix::FpDense))
            })
            .build();
        let q = p.with_dvfs_on("hot", 0.5);
        let scale = q
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Compute { speed_scale, .. } => Some(*speed_scale),
                _ => None,
            })
            .unwrap();
        assert_eq!(scale, 0.5, "compute inside nested scope is covered");
    }

    #[test]
    fn comm_ops_record() {
        let p = Program::builder()
            .call("main", |b| {
                b.alltoall(1024).barrier().allreduce(8).send(1, 64).recv(1)
            })
            .build();
        assert!(p.ops.contains(&Op::AllToAll {
            bytes_per_pair: 1024
        }));
        assert!(p.ops.contains(&Op::Barrier));
        assert_eq!(p.nominal_busy_ns(), 0);
    }
}
