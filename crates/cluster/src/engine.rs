//! The discrete-event executor.
//!
//! Ranks advance on their own local clocks; communication operations
//! couple them. The engine emits two things per run: the function
//! entry/exit event streams Tempest's instrumentation would have produced
//! on each node, and per-core *load segments* — who was busy doing what,
//! when — which [`crate::thermal_replay`] integrates through the node
//! thermal models.
//!
//! Collective matching follows MPI semantics: the k-th collective call of
//! every rank matches the k-th of every other (programs are SPMD). A rank
//! arriving at a collective blocks in `CommWait` (spinning on the NIC —
//! which is why communication-heavy codes like FT still draw nontrivial
//! power, yet run cooler than compute, per the paper's reference \[3\]).

use crate::netmodel::NetworkModel;
use crate::program::{Op, Program};
use crate::topology::ClusterSpec;
use std::collections::HashMap;
use tempest_probe::event::{Event, ThreadId};
use tempest_probe::func::{FunctionId, FunctionRegistry};
use tempest_sensors::power::ActivityMix;

/// One stretch of one core doing one kind of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSegment {
    /// Node the core belongs to.
    pub node: usize,
    /// Core index within the node.
    pub core: usize,
    /// Segment start on the simulated clock, ns.
    pub start_ns: u64,
    /// Segment end (exclusive), ns.
    pub end_ns: u64,
    /// What the core was doing.
    pub mix: ActivityMix,
    /// Utilisation of the core over the segment, 0..=1.
    pub utilization: f64,
    /// Dynamic-power scale of the segment (DVFS'd compute runs at
    /// `speed_scale³` ≈ `f·V²` under linear voltage/frequency scaling).
    pub dvfs_dynamic: f64,
}

/// Everything a simulated run produced.
#[derive(Debug)]
pub struct EngineOutput {
    /// Function events per rank (`ThreadId` = rank index).
    pub events_per_rank: Vec<Vec<Event>>,
    /// The per-node symbol tables (ranks on one node share a registry,
    /// as processes sharing a binary share a symbol table).
    pub node_registries: Vec<FunctionRegistry>,
    /// All load segments, unsorted.
    pub segments: Vec<LoadSegment>,
    /// Completion time of each rank, ns.
    pub rank_end_ns: Vec<u64>,
    /// Simulated makespan, ns.
    pub end_ns: u64,
    /// Time each rank spent blocked in communication, ns.
    pub comm_blocked_ns: Vec<u64>,
}

impl EngineOutput {
    /// Fraction of a rank's runtime spent blocked in communication.
    pub fn comm_fraction(&self, rank: usize) -> f64 {
        let total = self.rank_end_ns[rank];
        if total == 0 {
            0.0
        } else {
            self.comm_blocked_ns[rank] as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct RankState {
    pc: usize,
    time_ns: u64,
    /// Open function scopes (for sanity checking).
    depth: usize,
    /// Index of the next collective this rank will join.
    coll_counter: usize,
    blocked: Blocked,
    finished: bool,
}

#[derive(Debug, PartialEq)]
enum Blocked {
    No,
    /// Waiting in collective instance `idx` since `arrived_ns`.
    Collective {
        idx: usize,
        arrived_ns: u64,
    },
    /// Waiting for a message from `from` since `arrived_ns`.
    Recv {
        from: usize,
        arrived_ns: u64,
    },
}

#[derive(Debug)]
struct CollectiveInstance {
    /// The op that defined it (all ranks must agree).
    op: Op,
    arrivals: Vec<Option<u64>>,
}

/// Run `programs` (one per rank) on `spec` with network `net`.
///
/// `node_speed` scales each node's compute speed (1.0 = nominal); small
/// per-node differences desynchronise ranks the way real clusters do.
///
/// # Panics
///
/// On SPMD violations: mismatched collective sequences, send/recv
/// deadlock, or oversubscription.
pub fn run(
    spec: &ClusterSpec,
    net: &NetworkModel,
    programs: &[Program],
    node_speed: &[f64],
) -> EngineOutput {
    let np = programs.len();
    assert!(np > 0, "need at least one rank");
    assert_eq!(node_speed.len(), spec.nodes, "one speed factor per node");

    let locations: Vec<_> = (0..np).map(|r| spec.place(r, np)).collect();
    let node_registries: Vec<FunctionRegistry> =
        (0..spec.nodes).map(|_| FunctionRegistry::new()).collect();

    let mut ranks: Vec<RankState> = (0..np)
        .map(|_| RankState {
            pc: 0,
            time_ns: 0,
            depth: 0,
            coll_counter: 0,
            blocked: Blocked::No,
            finished: false,
        })
        .collect();
    let mut call_stacks: Vec<Vec<FunctionId>> = vec![Vec::new(); np];
    let mut events: Vec<Vec<Event>> = vec![Vec::new(); np];
    let mut segments: Vec<LoadSegment> = Vec::new();
    let mut comm_blocked: Vec<u64> = vec![0; np];

    let mut collectives: Vec<CollectiveInstance> = Vec::new();
    // (from, to) → FIFO of data-arrival times for posted sends.
    let mut mailbox: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    // (from, to) → count of receives already matched (for FIFO order).
    let mut consumed: HashMap<(usize, usize), usize> = HashMap::new();

    loop {
        // Pick the runnable rank with the smallest local time.
        let next = ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.finished && r.blocked == Blocked::No)
            .min_by_key(|(_, r)| r.time_ns)
            .map(|(i, _)| i);
        let Some(r) = next else {
            if ranks.iter().all(|r| r.finished) {
                break;
            }
            panic!(
                "deadlock: all unfinished ranks blocked ({:?})",
                ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.finished)
                    .map(|(i, r)| (i, format!("{:?}", r.blocked)))
                    .collect::<Vec<_>>()
            );
        };

        let loc = locations[r];
        let speed = node_speed[loc.node];
        let Some(op) = programs[r].ops.get(ranks[r].pc).cloned() else {
            assert_eq!(
                ranks[r].depth, 0,
                "rank {r} finished with {} open scopes",
                ranks[r].depth
            );
            ranks[r].finished = true;
            continue;
        };
        let now = ranks[r].time_ns;

        match op {
            Op::CallEnter(name) => {
                let id = node_registries[loc.node].register(&name);
                call_stacks[r].push(id);
                events[r].push(Event::enter(now, ThreadId(r as u32), id));
                ranks[r].depth += 1;
                ranks[r].pc += 1;
            }
            Op::CallExit => {
                let id = call_stacks[r]
                    .pop()
                    .unwrap_or_else(|| panic!("rank {r}: CallExit without open scope"));
                events[r].push(Event::exit(now, ThreadId(r as u32), id));
                ranks[r].depth -= 1;
                ranks[r].pc += 1;
            }
            Op::Compute {
                duration_ns,
                mix,
                speed_scale,
            } => {
                let scale = (speed_scale * speed).max(1e-9);
                let dur = (duration_ns as f64 / scale) as u64;
                segments.push(LoadSegment {
                    node: loc.node,
                    core: loc.core,
                    start_ns: now,
                    end_ns: now + dur,
                    mix,
                    utilization: 1.0,
                    dvfs_dynamic: speed_scale.powi(3),
                });
                ranks[r].time_ns += dur;
                ranks[r].pc += 1;
            }
            Op::Sleep { duration_ns } => {
                segments.push(LoadSegment {
                    node: loc.node,
                    core: loc.core,
                    start_ns: now,
                    end_ns: now + duration_ns,
                    mix: ActivityMix::Idle,
                    utilization: 0.0,
                    dvfs_dynamic: 1.0,
                });
                ranks[r].time_ns += duration_ns;
                ranks[r].pc += 1;
            }
            Op::Barrier | Op::AllToAll { .. } | Op::AllReduce { .. } => {
                let idx = ranks[r].coll_counter;
                if idx == collectives.len() {
                    collectives.push(CollectiveInstance {
                        op: op.clone(),
                        arrivals: vec![None; np],
                    });
                }
                let inst = &mut collectives[idx];
                assert_eq!(
                    inst.op, op,
                    "rank {r}: collective #{idx} mismatch: cluster is running {:?}, rank called {:?}",
                    inst.op, op
                );
                inst.arrivals[r] = Some(now);
                ranks[r].coll_counter += 1;
                ranks[r].blocked = Blocked::Collective {
                    idx,
                    arrived_ns: now,
                };

                if inst.arrivals.iter().all(Option::is_some) {
                    let max_arrival = inst.arrivals.iter().map(|a| a.unwrap()).max().unwrap();
                    let cost = match inst.op {
                        Op::Barrier => net.barrier_ns(np),
                        Op::AllToAll { bytes_per_pair } => net.alltoall_ns(np, bytes_per_pair),
                        Op::AllReduce { bytes } => net.allreduce_ns(np, bytes),
                        _ => unreachable!(),
                    };
                    let release = max_arrival + cost;
                    for (other, state) in ranks.iter_mut().enumerate() {
                        if let Blocked::Collective { idx: i, arrived_ns } = state.blocked {
                            if i == idx {
                                segments.push(LoadSegment {
                                    node: locations[other].node,
                                    core: locations[other].core,
                                    start_ns: arrived_ns,
                                    end_ns: release,
                                    mix: ActivityMix::CommWait,
                                    utilization: 1.0,
                                    dvfs_dynamic: 1.0,
                                });
                                comm_blocked[other] += release - arrived_ns;
                                state.blocked = Blocked::No;
                                state.time_ns = release;
                                state.pc += 1;
                            }
                        }
                    }
                }
            }
            Op::Send { to, bytes } => {
                assert!(to < np, "rank {r}: send to nonexistent rank {to}");
                let arrival = now + net.p2p_ns(bytes);
                mailbox.entry((r, to)).or_default().push(arrival);
                // Buffered send: sender proceeds immediately.
                ranks[r].pc += 1;
                // Wake a rank already blocked on this message.
                if let Blocked::Recv { from, arrived_ns } = ranks[to].blocked {
                    if from == r {
                        let k = *consumed.get(&(r, to)).unwrap_or(&0);
                        if let Some(&data_at) = mailbox[&(r, to)].get(k) {
                            let done = arrived_ns.max(data_at);
                            *consumed.entry((r, to)).or_default() += 1;
                            segments.push(LoadSegment {
                                node: locations[to].node,
                                core: locations[to].core,
                                start_ns: arrived_ns,
                                end_ns: done,
                                mix: ActivityMix::CommWait,
                                utilization: 1.0,
                                dvfs_dynamic: 1.0,
                            });
                            comm_blocked[to] += done - arrived_ns;
                            ranks[to].blocked = Blocked::No;
                            ranks[to].time_ns = done;
                            ranks[to].pc += 1;
                        }
                    }
                }
            }
            Op::Recv { from } => {
                assert!(from < np, "rank {r}: recv from nonexistent rank {from}");
                let k = *consumed.get(&(from, r)).unwrap_or(&0);
                match mailbox.get(&(from, r)).and_then(|q| q.get(k).copied()) {
                    Some(data_at) => {
                        let done = now.max(data_at);
                        *consumed.entry((from, r)).or_default() += 1;
                        if done > now {
                            segments.push(LoadSegment {
                                node: loc.node,
                                core: loc.core,
                                start_ns: now,
                                end_ns: done,
                                mix: ActivityMix::CommWait,
                                utilization: 1.0,
                                dvfs_dynamic: 1.0,
                            });
                            comm_blocked[r] += done - now;
                        }
                        ranks[r].time_ns = done;
                        ranks[r].pc += 1;
                    }
                    None => {
                        ranks[r].blocked = Blocked::Recv {
                            from,
                            arrived_ns: now,
                        };
                    }
                }
            }
        }
    }

    let rank_end_ns: Vec<u64> = ranks.iter().map(|r| r.time_ns).collect();
    let end_ns = rank_end_ns.iter().copied().max().unwrap_or(0);
    EngineOutput {
        events_per_rank: events,
        node_registries,
        segments,
        rank_end_ns,
        end_ns,
        comm_blocked_ns: comm_blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::topology::Placement;
    use tempest_probe::event::EventKind;

    fn spec(nodes: usize) -> ClusterSpec {
        ClusterSpec::new(nodes, 4, Placement::Spread)
    }

    fn net() -> NetworkModel {
        NetworkModel::gigabit_ethernet()
    }

    #[test]
    fn single_rank_compute_program() {
        let p = Program::builder()
            .call("main", |b| b.compute(1.0, ActivityMix::FpDense))
            .build();
        let out = run(&spec(1), &net(), &[p], &[1.0]);
        assert_eq!(out.end_ns, 1_000_000_000);
        assert_eq!(out.events_per_rank[0].len(), 2);
        assert_eq!(out.segments.len(), 1);
        assert_eq!(out.segments[0].mix, ActivityMix::FpDense);
        assert_eq!(out.comm_fraction(0), 0.0);
    }

    #[test]
    fn events_carry_rank_thread_ids_and_node_registries() {
        let p = Program::builder()
            .call("main", |b| b.compute(0.1, ActivityMix::Balanced))
            .build();
        let out = run(&spec(2), &net(), &[p.clone(), p], &[1.0, 1.0]);
        assert_eq!(out.events_per_rank[1][0].thread, ThreadId(1));
        // Each node registered "main" once in its own registry.
        assert_eq!(out.node_registries[0].len(), 1);
        assert_eq!(out.node_registries[1].len(), 1);
    }

    #[test]
    fn barrier_synchronises_ranks() {
        // Rank 0 computes 1 s, rank 1 computes 2 s; after the barrier both
        // resume at the same instant.
        let mk = |secs: f64| {
            Program::builder()
                .call("main", |b| {
                    b.compute(secs, ActivityMix::Balanced)
                        .barrier()
                        .compute(0.1, ActivityMix::Balanced)
                })
                .build()
        };
        let out = run(&spec(2), &net(), &[mk(1.0), mk(2.0)], &[1.0, 1.0]);
        let release = 2_000_000_000 + net().barrier_ns(2);
        assert_eq!(out.rank_end_ns[0], out.rank_end_ns[1]);
        assert_eq!(out.rank_end_ns[0], release + 100_000_000);
        // Rank 0 waited ~1 s.
        assert!(out.comm_blocked_ns[0] >= 1_000_000_000);
        assert!(out.comm_blocked_ns[1] < 1_000_000);
        // The wait appears as a CommWait segment on rank 0's core.
        assert!(out
            .segments
            .iter()
            .any(|s| s.mix == ActivityMix::CommWait && s.node == 0));
    }

    #[test]
    fn alltoall_costs_scale_with_bytes() {
        let mk = |bytes: u64| {
            let p = Program::builder()
                .call("main", |b| b.alltoall(bytes))
                .build();
            let out = run(
                &spec(4),
                &net(),
                &[p.clone(), p.clone(), p.clone(), p],
                &[1.0; 4],
            );
            out.end_ns
        };
        assert!(mk(1 << 20) > mk(1 << 10) * 10);
    }

    #[test]
    #[should_panic(expected = "collective #0 mismatch")]
    fn mismatched_collectives_panic() {
        let a = Program::builder().call("main", |b| b.barrier()).build();
        let b = Program::builder().call("main", |b| b.alltoall(8)).build();
        run(&spec(2), &net(), &[a, b], &[1.0, 1.0]);
    }

    #[test]
    fn send_recv_pairs_transfer_data() {
        let sender = Program::builder()
            .call("main", |b| {
                b.compute(0.5, ActivityMix::Balanced).send(1, 1_000_000)
            })
            .build();
        let receiver = Program::builder().call("main", |b| b.recv(0)).build();
        let out = run(&spec(2), &net(), &[sender, receiver], &[1.0, 1.0]);
        // Receiver waits for sender's compute + transfer.
        let expect = 500_000_000 + net().p2p_ns(1_000_000);
        assert_eq!(out.rank_end_ns[1], expect);
        assert!(out.comm_blocked_ns[1] >= 500_000_000);
    }

    #[test]
    fn recv_after_send_completes_without_blocking_wait() {
        let sender = Program::builder().call("main", |b| b.send(1, 1024)).build();
        let receiver = Program::builder()
            .call("main", |b| b.compute(1.0, ActivityMix::Balanced).recv(0))
            .build();
        let out = run(&spec(2), &net(), &[sender, receiver], &[1.0, 1.0]);
        // Data arrived long before the recv: no blocked time.
        assert_eq!(out.comm_blocked_ns[1], 0);
        assert_eq!(out.rank_end_ns[1], 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_deadlocks() {
        let a = Program::builder().call("main", |b| b.recv(1)).build();
        let b = Program::builder().call("main", |b| b.recv(0)).build();
        run(&spec(2), &net(), &[a, b], &[1.0, 1.0]);
    }

    #[test]
    fn node_speed_factor_stretches_compute() {
        let p = Program::builder()
            .call("main", |b| b.compute(1.0, ActivityMix::Balanced))
            .build();
        let out = run(&spec(2), &net(), &[p.clone(), p], &[1.0, 0.5]);
        assert_eq!(out.rank_end_ns[0], 1_000_000_000);
        assert_eq!(out.rank_end_ns[1], 2_000_000_000);
    }

    #[test]
    fn dvfs_scaled_compute_stretches_and_derates_power() {
        let p = Program::builder()
            .call("main", |b| b.compute(1.0, ActivityMix::FpDense))
            .build()
            .with_dvfs_on("main", 0.5);
        let out = run(&spec(1), &net(), &[p], &[1.0]);
        assert_eq!(out.end_ns, 2_000_000_000);
        let seg = &out.segments[0];
        assert!((seg.dvfs_dynamic - 0.125).abs() < 1e-12, "0.5³");
    }

    #[test]
    fn nested_calls_produce_well_nested_events() {
        let p = Program::builder()
            .call("main", |b| {
                b.call("phase1", |b| b.compute(0.1, ActivityMix::Balanced))
                    .call("phase2", |b| b.compute(0.1, ActivityMix::Balanced))
            })
            .build();
        let out = run(&spec(1), &net(), &[p], &[1.0]);
        let kinds: Vec<bool> = out.events_per_rank[0]
            .iter()
            .map(|e| matches!(e.kind, EventKind::Enter { .. }))
            .collect();
        assert_eq!(kinds, vec![true, true, false, true, false, false]);
        // Timestamps are monotone.
        let ts: Vec<u64> = out.events_per_rank[0]
            .iter()
            .map(|e| e.timestamp_ns)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn comm_fraction_for_alltoall_heavy_program() {
        // FT-like: half compute, half all-to-all (large payload).
        let p = |_r: usize| {
            Program::builder()
                .call("main", |b| {
                    b.repeat(5, |b| {
                        b.compute(0.05, ActivityMix::FpDense).alltoall(4 << 20)
                    })
                })
                .build()
        };
        let progs: Vec<Program> = (0..4).map(p).collect();
        let out = run(&spec(4), &net(), &progs, &[1.0; 4]);
        let f = out.comm_fraction(0);
        assert!(f > 0.3, "expected substantial comm fraction, got {f}");
    }

    #[test]
    fn collectives_with_many_ranks_complete() {
        let p = Program::builder()
            .call("main", |b| {
                b.repeat(3, |b| b.compute(0.01, ActivityMix::Balanced).barrier())
            })
            .build();
        let progs = vec![p; 16];
        let out = run(&spec(4), &net(), &progs, &[1.0; 4]);
        assert!(out.rank_end_ns.iter().all(|&t| t == out.end_ns));
    }
}
