//! Interconnect cost model.
//!
//! A latency/bandwidth (LogP-flavoured) model for the gigabit-class
//! interconnect of the paper's era. Collective costs use the standard
//! algorithmic shapes: log-tree barriers and reductions, ring/pairwise
//! all-to-all. The absolute numbers only need to be era-plausible — what
//! matters for reproduction is the *proportion* of time FT spends blocked
//! in all-to-all (≈50 %, §4.3), which these costs and the workload models
//! together produce.

/// Latency/bandwidth network model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way small-message latency, ns (α).
    pub latency_ns: u64,
    /// Point-to-point bandwidth, bytes/second (1/β).
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Gigabit Ethernet of the mid-2000s: ~50 µs MPI latency, ~110 MB/s.
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            latency_ns: 50_000,
            bandwidth_bps: 110e6,
        }
    }

    /// Myrinet/InfiniBand-class fabric (System X used InfiniBand):
    /// ~8 µs latency, ~700 MB/s.
    pub fn infiniband() -> Self {
        NetworkModel {
            latency_ns: 8_000,
            bandwidth_bps: 700e6,
        }
    }

    /// Time to move `bytes` point-to-point, ns.
    pub fn p2p_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.bandwidth_bps * 1e9) as u64
    }

    /// Barrier among `np` ranks (log-tree), ns.
    pub fn barrier_ns(&self, np: usize) -> u64 {
        self.latency_ns * log2_ceil(np) as u64 * 2
    }

    /// All-to-all where each rank sends `bytes_per_pair` to every other
    /// rank (pairwise exchange): `(P−1)` rounds, each a latency plus the
    /// pair payload.
    pub fn alltoall_ns(&self, np: usize, bytes_per_pair: u64) -> u64 {
        if np <= 1 {
            return 0;
        }
        let rounds = (np - 1) as u64;
        rounds * self.p2p_ns(bytes_per_pair)
    }

    /// All-reduce of `bytes` (recursive doubling): `2·log2(P)` stages.
    pub fn allreduce_ns(&self, np: usize, bytes: u64) -> u64 {
        if np <= 1 {
            return 0;
        }
        2 * log2_ceil(np) as u64 * self.p2p_ns(bytes)
    }

    /// Broadcast of `bytes` (binomial tree).
    pub fn bcast_ns(&self, np: usize, bytes: u64) -> u64 {
        if np <= 1 {
            return 0;
        }
        log2_ceil(np) as u64 * self.p2p_ns(bytes)
    }
}

fn log2_ceil(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(16), 4);
    }

    #[test]
    fn p2p_cost_is_latency_plus_transfer() {
        let n = NetworkModel::gigabit_ethernet();
        assert_eq!(n.p2p_ns(0), 50_000);
        // 110 MB at 110 MB/s = 1 s.
        let t = n.p2p_ns(110_000_000);
        assert!((t as f64 - 1e9).abs() < 1e6 + 50_000.0);
    }

    #[test]
    fn collective_costs_grow_with_np() {
        let n = NetworkModel::gigabit_ethernet();
        assert!(n.barrier_ns(8) > n.barrier_ns(2));
        assert!(n.alltoall_ns(8, 1024) > n.alltoall_ns(4, 1024));
        assert!(n.allreduce_ns(8, 8) > n.allreduce_ns(2, 8));
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let n = NetworkModel::gigabit_ethernet();
        assert_eq!(n.alltoall_ns(1, 1 << 20), 0);
        assert_eq!(n.allreduce_ns(1, 1 << 20), 0);
        assert_eq!(n.bcast_ns(1, 1 << 20), 0);
        assert_eq!(n.barrier_ns(1), 0);
    }

    #[test]
    fn infiniband_faster_than_ethernet() {
        let e = NetworkModel::gigabit_ethernet();
        let i = NetworkModel::infiniband();
        assert!(i.p2p_ns(1 << 20) < e.p2p_ns(1 << 20));
        assert!(i.alltoall_ns(4, 1 << 20) < e.alltoall_ns(4, 1 << 20));
    }

    #[test]
    fn alltoall_scales_with_payload() {
        let n = NetworkModel::gigabit_ethernet();
        let small = n.alltoall_ns(4, 1 << 10);
        let large = n.alltoall_ns(4, 1 << 20);
        assert!(large > small * 10);
    }
}
