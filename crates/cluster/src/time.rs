//! Simulated-time helpers.
//!
//! The simulator shares the probe's nanosecond `u64` time axis so traces
//! produced in simulation are drop-in inputs to the parser.

/// Convert seconds to the nanosecond axis.
#[inline]
pub fn secs_to_ns(s: f64) -> u64 {
    debug_assert!(s >= 0.0, "negative simulated duration");
    (s * 1e9).round() as u64
}

/// Convert milliseconds to nanoseconds.
#[inline]
pub fn ms_to_ns(ms: f64) -> u64 {
    secs_to_ns(ms / 1e3)
}

/// Convert the nanosecond axis back to seconds.
#[inline]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert_eq!(ms_to_ns(250.0), 250_000_000);
        assert!((ns_to_secs(secs_to_ns(12.345)) - 12.345).abs() < 1e-9);
        assert_eq!(secs_to_ns(0.0), 0);
    }

    #[test]
    fn sub_nanosecond_rounds() {
        assert_eq!(secs_to_ns(1e-10), 0);
        assert_eq!(secs_to_ns(6e-10), 1);
    }
}
