//! The `tempest` CLI: subcommand parsing and execution.
//!
//! ```text
//! tempest demo <ft|bt|cg|ep|mg|lu|is|micro-d> [--class S|W|A|B|C] [--np N] [--out DIR]
//! tempest report <trace…>           # Figure-2(a) report per node
//! tempest summary <trace…>          # cluster-level merge & divergence
//! tempest plot <trace> [--sensor N] # ASCII timeline + function banner
//! tempest gprof <trace>             # baseline flat profile of the same events
//! tempest dump <trace>              # raw text dump
//! tempest sensors                   # live hwmon discovery + one sample
//! tempest spool recover <dir>       # rebuild a trace from a crash spool
//! tempest export <trace>            # Chrome trace_event JSON for Perfetto
//! tempest metrics <trace…>          # run the pipeline, print self-metrics
//! tempest watch <spool dir>         # live one-screen status of a spool
//! tempest collect serve --out DIR   # network collector daemon
//! tempest ship <spool dir> --to A   # stream a spool to a collector
//! ```
//!
//! Argument handling is deliberately hand-rolled: the dependency budget
//! (DESIGN.md) has no CLI crate, and the grammar is six fixed verbs.

use std::path::{Path, PathBuf};
use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::plot::{ascii_plot, function_banner, TimeSeries};
use tempest_core::timeline::Timeline;
use tempest_core::{report, AnalysisCache, ClusterProfile, Engine, ParseError};
use tempest_probe::trace::Trace;
use tempest_sensors::SensorId;
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// What went wrong, user-facing.
    pub message: String,
    /// Suggested process exit code (2 = usage, 1 = runtime).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn run(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

const USAGE: &str = "\
tempest — thermal profiler for parallel code (Tempest reproduction)

USAGE:
  tempest demo <ft|bt|cg|ep|mg|lu|is|micro-d> [--class S|W|A|B|C] [--np N] [--out DIR]
  tempest record  <a|b|c|d|e> [--out DIR]      (native run, real instrumentation)
  tempest report  <trace file(s)> [--format text|csv|kv|md|json] [--recover] [--jobs N]
                  [--cache DIR | --no-cache]   (result cache; TEMPEST_CACHE is the default)
  tempest summary <trace file(s)> [--recover] [--jobs N]
  tempest doctor  <trace file(s)> [--jobs N] [--fsck]   (triage damaged traces;
                  --fsck deep-verifies every spool frame under strict limits)
  tempest plot    <trace file> [--sensor N]
  tempest traits  <trace file> [--sensor N]
  tempest callgraph <trace file>
  tempest gprof   <trace file>
  tempest dump    <trace file>
  tempest sensors
  tempest spool recover <spool dir> [--out FILE]   (rebuild a trace from a crash spool)
  tempest export  <trace file> [--format chrome-trace] [--out FILE] [--recover]
  tempest export  <collected spool dir(s)> --format fleet-trace [--out FILE]
                  (cross-node ship→collect frame-latency track for Perfetto)
  tempest metrics <trace file(s)> [--format human|prom|json] [--recover] [--jobs N]
  tempest watch   <spool dir> [--interval SECS] [--count N]   (live spool status)
  tempest fleet   <HOST:PORT | collector out dir> [--interval SECS] [--count N]
                  [--json | --prom]   (live multi-node table from a collector's
                  metrics endpoint or its collected spool directories)
  tempest collect serve --out DIR [--addr HOST:PORT] [--once N] [--port-file FILE]
                  [--fsync] [--max-frame-bytes N] [--disk-budget N]
                  [--shed refuse|disconnect] [--rate-limit N] [--deadline SECS]
                  [--metrics-addr HOST:PORT [--metrics-port-file FILE]]
                  (--metrics-addr serves GET /metrics and /fleet.json over HTTP)
  tempest ship    <spool dir> --to HOST:PORT [--session NAME] [--follow]
                  [--retries N] [--base-ms N] [--cap-ms N] [--seed N]
                  [--no-telemetry]
  tempest serve   <collected dir> [--addr HOST:PORT] [--port-file FILE]
                  [--once N] [--once-ready] [--rate-limit N] [--rescan-ms MS]
                  (analysis query daemon: GET /api/v1/health, /api/v1/sessions,
                  /api/v1/sessions/{id}/profile, /api/v1/sessions/{id}/hotspots,
                  /api/v1/fleet; answers come from the analysis result cache,
                  default <dir>/.tempest-cache unless --no-cache)

  report/summary/doctor/export/serve share the common flags --jobs N,
  --cache DIR | --no-cache, --deadline SECS, and --metrics (print self-metrics
  after the run). A --deadline is a wall-clock budget after which analysis stops
  and renders whatever was decoded so far (partial results, flagged in the
  quality line; serve applies it per request and never caches partial answers).
";

/// Entry point given argv (without the program name). Writes to stdout;
/// returns an error with exit code otherwise.
pub fn main_with_args(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let mut it = args.iter();
    let verb = it.next().map(String::as_str).unwrap_or("");
    let rest: Vec<String> = it.cloned().collect();
    match verb {
        "demo" => cmd_demo(&rest, out),
        "record" => cmd_record(&rest, out),
        "report" => cmd_report(&rest, out),
        "summary" => cmd_summary(&rest, out),
        "doctor" => cmd_doctor(&rest, out),
        "plot" => cmd_plot(&rest, out),
        "traits" => cmd_traits(&rest, out),
        "callgraph" => cmd_callgraph(&rest, out),
        "gprof" => cmd_gprof(&rest, out),
        "dump" => cmd_dump(&rest, out),
        "sensors" => cmd_sensors(out),
        "spool" => cmd_spool(&rest, out),
        "export" => cmd_export(&rest, out),
        "metrics" => cmd_metrics(&rest, out),
        "watch" => cmd_watch(&rest, out),
        "fleet" => cmd_fleet(&rest, out),
        "collect" => cmd_collect(&rest, out),
        "ship" => cmd_ship(&rest, out),
        "serve" => cmd_serve(&rest, out),
        "help" | "--help" | "-h" | "" => {
            let _ = write!(out, "{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Flags that take no value; everything else starting `--` consumes one.
const BOOLEAN_FLAGS: &[&str] = &[
    "--recover",
    "--metrics",
    "--fsync",
    "--follow",
    "--no-cache",
    "--fsck",
    "--json",
    "--prom",
    "--no-telemetry",
    "--once-ready",
];

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOLEAN_FLAGS.contains(&a.as_str()) && args.get(i + 1).is_some();
            continue;
        }
        out.push(a);
    }
    out
}

/// Parse `--jobs N` (0 = one worker per CPU, the default). Multi-node
/// analysis fans out over this many workers; results are merged in input
/// order, so any worker count produces byte-identical output.
fn parse_jobs(args: &[String]) -> Result<usize, CliError> {
    match flag_value(args, "--jobs") {
        None => Ok(0),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage("--jobs wants an integer (0 = auto)")),
    }
}

fn parse_class(s: &str) -> Result<Class, CliError> {
    Ok(match s.to_ascii_uppercase().as_str() {
        "S" => Class::S,
        "W" => Class::W,
        "A" => Class::A,
        "B" => Class::B,
        "C" => Class::C,
        other => return Err(CliError::usage(format!("unknown class `{other}`"))),
    })
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    Trace::load(Path::new(path)).map_err(|e| CliError::run(format!("{path}: {e}")))
}

/// The flag set shared by every analysis-running subcommand
/// (`report`/`summary`/`doctor`/`export`/`serve`), parsed once so the
/// flags mean the same thing — and fail the same way — everywhere:
/// `--jobs N`, `--cache DIR | --no-cache` (with `TEMPEST_CACHE` as the
/// implicit cache default), `--deadline SECS`, and `--metrics`.
struct CommonFlags {
    /// Worker count (0 = auto); analysis fan-out or serve workers.
    jobs: usize,
    /// Wall-clock analysis budget in seconds (0 = none). `deadline()`
    /// turns it into an absolute cutoff at the point of use.
    deadline_secs: u64,
    /// Print the self-metrics snapshot after the run.
    metrics: bool,
    /// `--no-cache` was passed — wins over `--cache` and the env var.
    no_cache: bool,
    /// Resolved cache directory (`--cache DIR`, else `TEMPEST_CACHE`),
    /// ignored when `no_cache` is set.
    cache_dir: Option<PathBuf>,
}

fn parse_common_flags(args: &[String]) -> Result<CommonFlags, CliError> {
    Ok(CommonFlags {
        jobs: parse_jobs(args)?,
        deadline_secs: parse_u64_flag(args, "--deadline", 0)?,
        metrics: flag_present(args, "--metrics"),
        no_cache: flag_present(args, "--no-cache"),
        cache_dir: flag_value(args, "--cache")
            .or_else(|| {
                std::env::var("TEMPEST_CACHE")
                    .ok()
                    .filter(|v| !v.is_empty())
            })
            .map(PathBuf::from),
    })
}

impl CommonFlags {
    /// The absolute deadline for an analysis starting now, if any.
    fn deadline(&self) -> Option<std::time::Instant> {
        (self.deadline_secs > 0)
            .then(|| std::time::Instant::now() + std::time::Duration::from_secs(self.deadline_secs))
    }

    /// Open the resolved result cache (`None` means run uncached).
    fn open_cache(&self) -> Result<Option<AnalysisCache>, CliError> {
        if self.no_cache {
            return Ok(None);
        }
        match &self.cache_dir {
            None => Ok(None),
            Some(dir) => AnalysisCache::open(dir)
                .map(Some)
                .map_err(|e| CliError::run(format!("{}: {e}", dir.display()))),
        }
    }

    /// The shared `--metrics` tail: append the self-metrics snapshot.
    fn finish(&self, out: &mut dyn std::io::Write) {
        if self.metrics {
            write_self_metrics(out);
        }
    }
}

/// Append the global self-metrics snapshot (human format) — the shared
/// tail of `--metrics` on report/summary/doctor.
fn write_self_metrics(out: &mut dyn std::io::Write) {
    let snap = tempest_obs::global().snapshot();
    let _ = write!(out, "\nself-metrics:\n{}", tempest_obs::to_human(&snap));
}

/// `tempest export`: render a trace in an interchange format. The only
/// format so far is `chrome-trace`: Chrome `trace_event` JSON that loads
/// directly in chrome://tracing or https://ui.perfetto.dev (functions as
/// per-thread duration events, sensors as counter tracks, gaps as
/// instant events).
fn cmd_export(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("export: which trace file?"))?;
    let common = parse_common_flags(args)?;
    let format = flag_value(args, "--format").unwrap_or_else(|| "chrome-trace".into());
    if format == "fleet-trace" {
        export_fleet_trace(&pos, args, out)?;
        common.finish(out);
        return Ok(());
    }
    if format != "chrome-trace" {
        return Err(CliError::usage(format!(
            "unknown export format `{format}` (chrome-trace|fleet-trace)"
        )));
    }
    let trace = if flag_present(args, "--recover") {
        Trace::load_salvage(Path::new(path.as_str()))
            .map(|(t, _)| t)
            .map_err(|e| CliError::run(format!("{path}: {e}")))?
    } else {
        load_trace(path)?
    };
    let doc = tempest_core::chrome_trace_json(&trace);
    match flag_value(args, "--out") {
        Some(file) => {
            std::fs::write(&file, doc).map_err(|e| CliError::run(format!("{file}: {e}")))?;
            let _ = writeln!(
                out,
                "wrote {file} — open it at https://ui.perfetto.dev or chrome://tracing"
            );
        }
        None => {
            let _ = write!(out, "{doc}");
        }
    }
    common.finish(out);
    Ok(())
}

/// `tempest export --format fleet-trace`: render the cross-node
/// ship→collect frame-latency view from one or more collected session
/// spool directories. Each directory contributes one process whose
/// track holds a duration event per shipped frame, spanning the frame's
/// spool-append origin stamp to its collector receipt stamp (the
/// `FRAME_SHIPPED2` envelope carries both).
fn export_fleet_trace(
    pos: &[&String],
    args: &[String],
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut nodes: Vec<(String, Vec<tempest_probe::spool::FrameTrace>)> = Vec::new();
    for path in pos {
        let dir = Path::new(path.as_str());
        if !tempest_probe::spool::is_spool_dir(dir) {
            return Err(CliError::run(format!("{path}: not a spool directory")));
        }
        let (_, rep) = tempest_probe::spool::recover(dir)
            .map_err(|e| CliError::run(format!("{path}: {e}")))?;
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(path)
            .to_string();
        nodes.push((name, rep.frame_traces));
    }
    let traced: usize = nodes.iter().map(|(_, t)| t.len()).sum();
    if traced == 0 {
        return Err(CliError::run(
            "no frame traces found — fleet-trace needs collector-side session \
             directories (shipped with protocol v2)"
                .to_string(),
        ));
    }
    let doc = tempest_core::chrome_fleet_trace_json(&nodes);
    match flag_value(args, "--out") {
        Some(file) => {
            std::fs::write(&file, doc).map_err(|e| CliError::run(format!("{file}: {e}")))?;
            let _ = writeln!(
                out,
                "wrote {file} ({traced} frame trace(s) across {} node(s)) — open it at https://ui.perfetto.dev",
                nodes.len()
            );
        }
        None => {
            let _ = write!(out, "{doc}");
        }
    }
    Ok(())
}

/// `tempest metrics`: run the full analysis pipeline over the given
/// traces purely to exercise it, then print the self-metrics the run
/// produced (stage timings, decode counters, …) in the chosen format.
fn cmd_metrics(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos: Vec<String> = positional(args).into_iter().cloned().collect();
    if pos.is_empty() {
        return Err(CliError::usage("metrics: which trace file(s)?"));
    }
    let format = flag_value(args, "--format").unwrap_or_else(|| "human".into());
    if !matches!(format.as_str(), "human" | "prom" | "json") {
        return Err(CliError::usage(format!(
            "unknown metrics format `{format}` (human|prom|json)"
        )));
    }
    let request = tempest_core::AnalysisRequest::new()
        .jobs(parse_jobs(args)?)
        .recover(flag_present(args, "--recover"));
    for result in request.analyze(&pos).into_profiles() {
        result.map_err(CliError::run)?;
    }
    let snap = tempest_obs::global().snapshot();
    let rendered = match format.as_str() {
        "human" => tempest_obs::to_human(&snap),
        "prom" => tempest_obs::to_prometheus(&snap),
        "json" => tempest_obs::to_json(&snap),
        _ => unreachable!("format validated above"),
    };
    let _ = write!(out, "{rendered}");
    Ok(())
}

/// One rendered frame of `tempest watch`, plus the totals needed to
/// compute rates for the next frame.
struct WatchFrame {
    rendered: String,
    events: u64,
    samples: u64,
}

/// Render the live status of a spool directory: totals, rates against
/// the previous frame, backpressure drops, hottest sensor, and the top-5
/// hot functions recovered so far.
fn render_watch_frame(
    dir: &Path,
    prev: Option<(u64, u64)>,
    dt_secs: f64,
) -> Result<WatchFrame, String> {
    use std::fmt::Write as _;
    if !tempest_probe::spool::is_spool_dir(dir) {
        return Err("waiting for spool segments…".to_string());
    }
    let (trace, rep) =
        tempest_probe::spool::recover(dir).map_err(|e| format!("spool recovery failed: {e}"))?;
    let mut s = String::new();
    let span_secs = trace.span_ns() as f64 / 1e9;
    let rate = |now: u64, before: Option<u64>| -> f64 {
        match before {
            // Rate over the polling interval once we have a previous frame.
            Some(b) if dt_secs > 0.0 => (now.saturating_sub(b)) as f64 / dt_secs,
            // First frame: average over the trace's own span.
            _ if span_secs > 0.0 => now as f64 / span_secs,
            _ => 0.0,
        }
    };
    let _ = writeln!(
        s,
        "spool {} — {} segment(s), {} shutdown",
        dir.display(),
        rep.segments_scanned,
        if rep.clean_shutdown {
            "clean"
        } else {
            "live/unclean"
        }
    );
    let _ = writeln!(
        s,
        "  events   {:>10}   ({:.0}/s)",
        tempest_obs::human_count(rep.events_recovered),
        rate(rep.events_recovered, prev.map(|p| p.0)),
    );
    let _ = writeln!(
        s,
        "  samples  {:>10}   ({:.0}/s)",
        tempest_obs::human_count(rep.samples_recovered),
        rate(rep.samples_recovered, prev.map(|p| p.1)),
    );
    let _ = writeln!(
        s,
        "  drops    {} event(s), {} sample(s) shed",
        tempest_obs::human_count(rep.salvage.events_dropped_backpressure),
        tempest_obs::human_count(rep.salvage.samples_dropped_backpressure),
    );
    // Hottest sensor: latest reading per sensor, hottest of those.
    let mut latest: std::collections::BTreeMap<u16, f64> = std::collections::BTreeMap::new();
    for sample in &trace.samples {
        let c = sample.temperature.celsius();
        if c.is_finite() {
            latest.insert(sample.sensor.0, c);
        }
    }
    if let Some((&id, &celsius)) = latest.iter().max_by(|a, b| a.1.total_cmp(b.1)) {
        let label = trace
            .node
            .sensors
            .iter()
            .find(|m| m.id.0 == id)
            .map(|m| m.label.clone())
            .unwrap_or_else(|| format!("sensor#{id}"));
        let _ = writeln!(s, "  hottest  {label}  {celsius:.1} C");
    } else {
        let _ = writeln!(s, "  hottest  (no samples yet)");
    }
    let request = tempest_core::AnalysisRequest::new().recover(true);
    match request.analyze_trace(&trace) {
        Ok(profile) => {
            let _ = writeln!(s, "  top hot functions so far:");
            for spot in tempest_core::analysis::hotspots(&profile, 5) {
                let _ = writeln!(
                    s,
                    "    {:<20} avg {:>6.1} F  {:>7.2}s  score {:>8.2}",
                    spot.name, spot.avg_f, spot.inclusive_secs, spot.score
                );
            }
        }
        Err(e) => {
            let _ = writeln!(s, "  (no profile yet: {e})");
        }
    }
    Ok(WatchFrame {
        rendered: s,
        events: rep.events_recovered,
        samples: rep.samples_recovered,
    })
}

/// `tempest watch`: tail a live spool directory, re-rendering a
/// one-screen status every `--interval` seconds. `--count N` stops after
/// N frames (0 = forever); each frame after the first starts with an
/// ANSI clear so a terminal shows a refreshing screen.
fn cmd_watch(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let dir = pos
        .first()
        .ok_or_else(|| CliError::usage("watch: which spool directory?"))?;
    let interval: f64 = flag_value(args, "--interval")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| CliError::usage("--interval wants seconds"))?;
    if !interval.is_finite() || interval < 0.0 {
        return Err(CliError::usage("--interval wants non-negative seconds"));
    }
    let count: u64 = flag_value(args, "--count")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| CliError::usage("--count wants an integer (0 = forever)"))?;
    let dir_path = Path::new(dir.as_str());
    let mut prev: Option<(u64, u64)> = None;
    let mut frame_no = 0u64;
    loop {
        if frame_no > 0 {
            // Refresh in place on a terminal; harmless in a pipe.
            let _ = write!(out, "\x1b[2J\x1b[H");
            std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        }
        frame_no += 1;
        match render_watch_frame(dir_path, prev, interval) {
            Ok(frame) => {
                let _ = write!(out, "{}", frame.rendered);
                prev = Some((frame.events, frame.samples));
            }
            Err(reason) => {
                let _ = writeln!(out, "{}: {reason}", dir_path.display());
            }
        }
        let _ = out.flush();
        if count != 0 && frame_no >= count {
            return Ok(());
        }
    }
}

/// One node's row in the `tempest fleet` table, extracted from a
/// telemetry snapshot regardless of whether it arrived over HTTP or was
/// scanned out of a collected spool directory.
struct FleetRow {
    key: String,
    host: String,
    age_ms: Option<u64>,
    stale: bool,
    events: u64,
    acked: u64,
    drops: u64,
    io_drops: u64,
    limit_hits: u64,
    hot: Option<(u16, f64)>,
}

/// Build a table row from a snapshot's counters/gauges; absent metrics
/// read as zero so nodes at different pipeline stages still render.
fn fleet_row(
    key: &str,
    host: &str,
    age_ms: Option<u64>,
    stale: bool,
    snap: &tempest_obs::Snapshot,
) -> FleetRow {
    let c = |n: &str| snap.counter(n).unwrap_or(0);
    FleetRow {
        key: key.to_string(),
        host: host.to_string(),
        age_ms,
        stale,
        events: c("probe_events_total"),
        acked: c("ship_frames_acked_total"),
        drops: c("spool_events_dropped_backpressure") + c("spool_samples_dropped_backpressure"),
        io_drops: c("spool_batches_dropped_io_total"),
        limit_hits: c("limit_hits_total"),
        hot: snap.gauge("tempd_hottest_celsius").map(|cel| {
            (
                snap.gauge("tempd_hottest_sensor").unwrap_or(0.0) as u16,
                cel,
            )
        }),
    }
}

/// Render the fleet table: one header, one line per node, stale nodes
/// marked with `!` on their age.
fn render_fleet_table(rows: &[FleetRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let stale = rows.iter().filter(|r| r.stale).count();
    let _ = writeln!(s, "fleet: {} node(s), {} stale", rows.len(), stale);
    let _ = writeln!(
        s,
        "  {:<24} {:<12} {:>7} {:>9} {:>8} {:>7} {:>8} {:>7}  HOTTEST",
        "NODE", "HOST", "AGE", "EVENTS", "ACKED", "DROPS", "IO-DROP", "LIMITS"
    );
    for r in rows {
        let mut age = r
            .age_ms
            .map_or_else(|| "?".to_string(), |ms| format!("{:.1}s", ms as f64 / 1e3));
        if r.stale {
            age.push('!');
        }
        let hot = r
            .hot
            .map_or_else(|| "-".to_string(), |(id, c)| format!("s{id} {c:.1}C"));
        let _ = writeln!(
            s,
            "  {:<24} {:<12} {:>7} {:>9} {:>8} {:>7} {:>8} {:>7}  {hot}",
            r.key,
            r.host,
            age,
            tempest_obs::human_count(r.events),
            tempest_obs::human_count(r.acked),
            tempest_obs::human_count(r.drops),
            tempest_obs::human_count(r.io_drops),
            tempest_obs::human_count(r.limit_hits),
        );
    }
    s
}

/// Parse a `/fleet.json` document into table rows.
fn rows_from_fleet_json(doc: &str) -> Result<Vec<FleetRow>, String> {
    let v = tempest_obs::Json::parse(doc).map_err(|e| format!("bad fleet.json: {e}"))?;
    let nodes = v
        .get("nodes")
        .and_then(|n| n.as_arr())
        .ok_or("fleet.json has no nodes array")?;
    let mut rows = Vec::new();
    for node in nodes {
        let metric_pairs = |section: &str| -> Vec<(String, f64)> {
            match node.get("metrics").and_then(|m| m.get(section)) {
                Some(tempest_obs::Json::Obj(map)) => map
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                    .collect(),
                _ => Vec::new(),
            }
        };
        let snap = tempest_obs::Snapshot {
            counters: metric_pairs("counters")
                .into_iter()
                .map(|(k, v)| (k, v as u64))
                .collect(),
            gauges: metric_pairs("gauges"),
            ..Default::default()
        };
        rows.push(fleet_row(
            node.get("key").and_then(|k| k.as_str()).unwrap_or("?"),
            node.get("hostname").and_then(|h| h.as_str()).unwrap_or("?"),
            node.get("age_ms")
                .and_then(|a| a.as_f64())
                .map(|a| a as u64),
            node.get("stale").and_then(|s| s.as_bool()).unwrap_or(false),
            &snap,
        ));
    }
    Ok(rows)
}

/// Scan a collector output directory into an aggregated fleet view —
/// the offline analogue of the collector's in-memory state. The scan
/// itself lives in [`tempest_collect::fleet`] (the query daemon's
/// `/api/v1/fleet` shares it); this wrapper only keeps the CLI's
/// "nothing yet" error contract.
fn local_fleet_state(dir: &Path) -> Result<tempest_collect::FleetState, String> {
    let fleet = tempest_collect::fleet::FleetState::from_collected_dir(
        dir,
        tempest_collect::fleet::DEFAULT_STALE_AFTER,
    );
    if fleet.is_empty() {
        Err("no telemetry snapshots found yet".to_string())
    } else {
        Ok(fleet)
    }
}

/// One `tempest fleet` frame, from either source, in any output mode.
fn render_fleet_frame(target: &str, json: bool, prom: bool) -> Result<String, String> {
    let dir = Path::new(target);
    if dir.is_dir() {
        let fleet = local_fleet_state(dir)?;
        if json {
            return Ok(fleet.to_json());
        }
        if prom {
            return Ok(fleet.to_prometheus());
        }
        let now = tempest_obs::unix_now_ns();
        let rows: Vec<FleetRow> = fleet
            .nodes()
            .iter()
            .map(|n| {
                // Offline scan: age against the snapshot's own origin
                // stamp, since nothing "received" it.
                let age_ms = now.saturating_sub(n.telemetry.origin_unix_ns) / 1_000_000;
                let stale = age_ms > fleet.stale_after().as_millis() as u64;
                fleet_row(
                    &n.key,
                    &n.telemetry.hostname,
                    Some(age_ms),
                    stale,
                    &n.telemetry.snapshot,
                )
            })
            .collect();
        return Ok(render_fleet_table(&rows));
    }
    if prom {
        return tempest_collect::http_get(target, "/metrics").map_err(|e| e.to_string());
    }
    let doc = tempest_collect::http_get(target, "/fleet.json").map_err(|e| e.to_string())?;
    if json {
        return Ok(doc);
    }
    Ok(render_fleet_table(&rows_from_fleet_json(&doc)?))
}

/// `tempest fleet`: the multi-node analogue of `tempest watch` — a live
/// table of every node a collector knows about (rates, drops, limit
/// hits, hottest sensor), sourced from the collector's HTTP metrics
/// endpoint (`HOST:PORT`) or offline from its collected spool
/// directories. `--json` / `--prom` print the raw fleet document /
/// Prometheus exposition instead (one shot by default).
fn cmd_fleet(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let target = pos.first().ok_or_else(|| {
        CliError::usage("fleet: which collector? (HOST:PORT or collected out dir)")
    })?;
    let json = flag_present(args, "--json");
    let prom = flag_present(args, "--prom");
    if json && prom {
        return Err(CliError::usage("fleet: --json and --prom are exclusive"));
    }
    let interval: f64 = flag_value(args, "--interval")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| CliError::usage("--interval wants seconds"))?;
    if !interval.is_finite() || interval < 0.0 {
        return Err(CliError::usage("--interval wants non-negative seconds"));
    }
    let default_count = if json || prom { "1" } else { "0" };
    let count: u64 = flag_value(args, "--count")
        .unwrap_or_else(|| default_count.into())
        .parse()
        .map_err(|_| CliError::usage("--count wants an integer (0 = forever)"))?;
    let mut frame_no = 0u64;
    loop {
        if frame_no > 0 {
            if !(json || prom) {
                let _ = write!(out, "\x1b[2J\x1b[H");
            }
            std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        }
        frame_no += 1;
        match render_fleet_frame(target, json, prom) {
            Ok(text) => {
                let _ = write!(out, "{text}");
            }
            Err(reason) if json || prom => {
                // Machine-readable modes fail loudly: a script piping
                // this into a parser must not see an error as data.
                return Err(CliError::run(format!("{target}: {reason}")));
            }
            Err(reason) => {
                let _ = writeln!(out, "{target}: {reason}");
            }
        }
        let _ = out.flush();
        if count != 0 && frame_no >= count {
            return Ok(());
        }
    }
}

/// Parse an optional integer flag with a default.
fn parse_u64_flag(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("{flag} wants an integer"))),
    }
}

/// `tempest collect serve`: run the network collector daemon. Every
/// shipped session lands under `--out` as a standard spool directory, so
/// `tempest spool recover`, `doctor`, `report --recover` and friends work
/// on the collected copy unchanged. `--once N` accepts exactly N
/// connections then exits (CI smoke tests); `--port-file` atomically
/// publishes the bound address so scripts using `--addr 127.0.0.1:0`
/// never have to guess or sleep.
fn cmd_collect(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use tempest_collect::{Collector, CollectorConfig, ShedPolicy};
    let pos = positional(args);
    match pos.first().map(|s| s.as_str()) {
        Some("serve") => {}
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown collect action `{other}` (only `serve`)"
            )))
        }
        None => return Err(CliError::usage("collect: which action? (serve)")),
    }
    let out_dir = flag_value(args, "--out")
        .ok_or_else(|| CliError::usage("collect serve: --out DIR is required"))?;
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:9797".into());
    let mut config = CollectorConfig::new(&out_dir);
    config.fsync_per_frame = flag_present(args, "--fsync");
    config.max_frame_bytes =
        parse_u64_flag(args, "--max-frame-bytes", config.max_frame_bytes as u64)?
            .min(u32::MAX as u64) as u32;
    if let Some(budget) = flag_value(args, "--disk-budget") {
        config.disk_budget_bytes = Some(
            budget
                .parse()
                .map_err(|_| CliError::usage("--disk-budget wants bytes"))?,
        );
    }
    if let Some(rate) = flag_value(args, "--rate-limit") {
        config.rate_limit = Some(
            rate.parse()
                .map_err(|_| CliError::usage("--rate-limit wants frames/sec"))?,
        );
    }
    config.session_deadline = parse_u64_flag(args, "--deadline", 0)
        .map(|secs| (secs > 0).then(|| std::time::Duration::from_secs(secs)))?;
    config.shed = match flag_value(args, "--shed").as_deref() {
        None | Some("refuse") => ShedPolicy::Refuse,
        Some("disconnect") => ShedPolicy::Disconnect,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown shed policy `{other}` (refuse|disconnect)"
            )))
        }
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| CliError::run(format!("{out_dir}: {e}")))?;

    let collector =
        Collector::bind(&addr, config).map_err(|e| CliError::run(format!("{addr}: {e}")))?;
    let handle = collector
        .handle()
        .map_err(|e| CliError::run(format!("collector: {e}")))?;
    let _ = writeln!(out, "collecting on {} into {out_dir}", handle.addr());
    let _ = out.flush();
    if let Some(port_file) = flag_value(args, "--port-file") {
        // Write-then-rename so a watching script never reads a partial
        // address — the file appears complete or not at all.
        let tmp = format!("{port_file}.tmp.{}", std::process::id());
        std::fs::write(&tmp, format!("{}\n", handle.addr()))
            .and_then(|()| std::fs::rename(&tmp, &port_file))
            .map_err(|e| CliError::run(format!("{port_file}: {e}")))?;
    }
    // Optional HTTP surface: GET /metrics (Prometheus text) and
    // GET /fleet.json, fed by the same fleet state the wire protocol
    // updates. Lives on its own listener so the collection port never
    // speaks HTTP.
    let metrics_server = match flag_value(args, "--metrics-addr") {
        Some(maddr) => {
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let server = tempest_collect::serve_metrics(&maddr, handle.fleet(), stop.clone())
                .map_err(|e| CliError::run(format!("{maddr}: {e}")))?;
            let _ = writeln!(
                out,
                "fleet metrics on http://{}/metrics and /fleet.json",
                server.addr()
            );
            let _ = out.flush();
            if let Some(file) = flag_value(args, "--metrics-port-file") {
                let tmp = format!("{file}.tmp.{}", std::process::id());
                std::fs::write(&tmp, format!("{}\n", server.addr()))
                    .and_then(|()| std::fs::rename(&tmp, &file))
                    .map_err(|e| CliError::run(format!("{file}: {e}")))?;
            }
            Some((server, stop))
        }
        None => None,
    };
    let served = match flag_value(args, "--once") {
        Some(n) => {
            let n: u64 = n
                .parse()
                .map_err(|_| CliError::usage("--once wants a connection count"))?;
            collector.serve_connections(n)
        }
        None => collector.run(),
    };
    served.map_err(|e| CliError::run(format!("collector: {e}")))?;
    if let Some((server, stop)) = metrics_server {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        server.join();
    }
    let stats = handle.stats();
    use std::sync::atomic::Ordering::Relaxed;
    let _ = writeln!(
        out,
        "served {} connection(s): {} frame(s) written, {} duplicate(s), {} quarantined, {} shed, {} session(s) completed",
        stats.connections.load(Relaxed),
        stats.frames.load(Relaxed),
        stats.duplicates.load(Relaxed),
        stats.quarantined.load(Relaxed),
        stats.shed.load(Relaxed),
        stats.sessions_completed.load(Relaxed),
    );
    Ok(())
}

/// `tempest serve`: the analysis query daemon. Point it at a collected
/// session directory (or a single spool) and it answers the versioned
/// `/api/v1/*` hot-spot questions over HTTP/1.1 keep-alive, serving
/// repeat questions from the content-hash analysis cache instead of
/// re-analyzing per request. `--once N` exits after N requests (CI
/// smoke); `--once-ready` additionally fails fast when the initial scan
/// finds no sessions, so a script never curls an empty catalog.
fn cmd_serve(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let dir = pos
        .first()
        .ok_or_else(|| CliError::usage("serve: which collected directory?"))?;
    let common = parse_common_flags(args)?;
    let once: Option<u64> = match flag_value(args, "--once") {
        Some(n) => Some(
            n.parse()
                .map_err(|_| CliError::usage("--once wants a request count"))?,
        ),
        None => None,
    };
    let once_ready = flag_present(args, "--once-ready");
    let port_file = flag_value(args, "--port-file");
    if once_ready && port_file.is_none() {
        return Err(CliError::usage("--once-ready needs --port-file FILE"));
    }

    let mut config = tempest_collect::QueryConfig {
        dir: PathBuf::from(dir.as_str()),
        addr: flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        ..Default::default()
    };
    config.jobs = if common.jobs == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        common.jobs
    };
    // The daemon caches next to the data by default: answers survive
    // restarts and a second daemon over the same directory starts warm.
    config.cache_dir = if common.no_cache {
        None
    } else {
        Some(
            common
                .cache_dir
                .clone()
                .unwrap_or_else(|| Path::new(dir.as_str()).join(".tempest-cache")),
        )
    };
    if let Some(rate) = flag_value(args, "--rate-limit") {
        config.rate_limit = Some(
            rate.parse()
                .map_err(|_| CliError::usage("--rate-limit wants requests/sec"))?,
        );
    }
    config.rescan_ms = parse_u64_flag(args, "--rescan-ms", 2000)?;
    config.deadline =
        (common.deadline_secs > 0).then(|| std::time::Duration::from_secs(common.deadline_secs));

    let server = tempest_collect::QueryServer::start(config)
        .map_err(|e| CliError::run(format!("{dir}: {e}")))?;
    if once_ready && server.session_count() == 0 {
        server.stop();
        server.join();
        return Err(CliError::run(format!("{dir}: no sessions found to serve")));
    }
    let _ = writeln!(
        out,
        "serving {} session(s) from {dir} on http://{}/api/v1/ ({} worker(s))",
        server.session_count(),
        server.addr(),
        server.jobs(),
    );
    let _ = out.flush();
    if let Some(port_file) = port_file {
        // Write-then-rename so a watching script never reads a partial
        // address; the catalog scan already ran, so the file appearing
        // means the API is answering.
        let tmp = format!("{port_file}.tmp.{}", std::process::id());
        std::fs::write(&tmp, format!("{}\n", server.addr()))
            .and_then(|()| std::fs::rename(&tmp, &port_file))
            .map_err(|e| CliError::run(format!("{port_file}: {e}")))?;
    }
    match once {
        Some(n) => {
            while server.served() < n {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            server.stop();
        }
        None => {
            // Foreground daemon: park until killed. The worker threads
            // own all the work; this thread just keeps the process up.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
    let served = server.served();
    server.join();
    let _ = writeln!(out, "served {served} request(s)");
    common.finish(out);
    Ok(())
}

/// `tempest ship`: stream a spool directory to a collector. Completion
/// means the collector acknowledged the session footer; a run that
/// exhausts its retry budget exits nonzero but leaves the local spool
/// (and the persisted resume cursor) intact, so a later re-run resumes
/// where this one stopped without re-sending anything.
fn cmd_ship(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use tempest_probe::ship::{self, ShipConfig};
    let pos = positional(args);
    let dir = pos
        .first()
        .ok_or_else(|| CliError::usage("ship: which spool directory?"))?;
    let to = flag_value(args, "--to")
        .ok_or_else(|| CliError::usage("ship: --to HOST:PORT is required"))?;
    let mut config = ShipConfig::new(dir.as_str(), to);
    if let Some(session) = flag_value(args, "--session") {
        config.session = session;
    }
    config.follow = flag_present(args, "--follow");
    config.telemetry = !flag_present(args, "--no-telemetry");
    config.retry.max_failures = parse_u64_flag(args, "--retries", config.retry.max_failures as u64)?
        .min(u32::MAX as u64) as u32;
    config.retry.base_ms = parse_u64_flag(args, "--base-ms", config.retry.base_ms)?;
    config.retry.cap_ms = parse_u64_flag(args, "--cap-ms", config.retry.cap_ms)?;
    config.retry.seed = parse_u64_flag(args, "--seed", config.retry.seed)?;

    let report = ship::ship(&config).map_err(|e| CliError::run(format!("{dir}: {e}")))?;
    let _ = writeln!(
        out,
        "shipped {}: {} frame(s) sent, {} acked, {} skipped (already collected), {} reconnect(s), {} ms backing off",
        dir,
        report.frames_sent,
        report.frames_acked,
        report.frames_skipped,
        report.reconnects,
        report.backoff_ms
    );
    if report.complete {
        let _ = writeln!(out, "session complete: collector holds the full spool");
        Ok(())
    } else if report.degraded {
        Err(CliError::run(format!(
            "retry budget exhausted at cursor {:?}; local spool kept, re-run `tempest ship` to resume",
            report.cursor
        )))
    } else {
        let _ = writeln!(
            out,
            "caught up at cursor {:?} (session still open; --follow tails it to completion)",
            report.cursor
        );
        Ok(())
    }
}

fn cmd_demo(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let workload = pos
        .first()
        .ok_or_else(|| CliError::usage("demo: which workload?"))?
        .as_str();
    let class = parse_class(&flag_value(args, "--class").unwrap_or_else(|| "A".into()))?;
    let np: usize = flag_value(args, "--np")
        .unwrap_or_else(|| "4".into())
        .parse()
        .map_err(|_| CliError::usage("--np wants an integer"))?;
    let dir = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "traces".into()));

    let programs = match workload {
        "micro-d" => vec![tempest_workloads::micro::program(
            tempest_workloads::micro::Micro::D,
            30.0,
            2.0,
        )],
        name => {
            let bench = NpbBenchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| CliError::usage(format!("unknown workload `{name}`")))?;
            bench.programs(class, np)
        }
    };
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &programs);
    std::fs::create_dir_all(&dir).map_err(|e| CliError::run(format!("{}: {e}", dir.display())))?;
    for trace in &run.traces {
        let path = dir.join(format!("{workload}-node{}.trace", trace.node.node_id));
        trace
            .save(&path)
            .map_err(|e| CliError::run(format!("{}: {e}", path.display())))?;
        let _ = writeln!(
            out,
            "wrote {} ({} events, {} samples)",
            path.display(),
            trace.events.len(),
            trace.samples.len()
        );
    }
    let _ = writeln!(
        out,
        "simulated {:.1}s on {} node(s); next: tempest report {}/{workload}-node0.trace",
        run.engine.end_ns as f64 / 1e9,
        run.traces.len(),
        dir.display()
    );
    Ok(())
}

fn cmd_record(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use tempest_workloads::micro::{run_native, Micro, MicroConfig};
    let pos = positional(args);
    let which = pos
        .first()
        .ok_or_else(|| CliError::usage("record: which micro-benchmark (a-e)?"))?;
    let micro = match which.to_ascii_lowercase().as_str() {
        "a" => Micro::A,
        "b" => Micro::B,
        "c" => Micro::C,
        "d" => Micro::D,
        "e" => Micro::E,
        other => {
            return Err(CliError::usage(format!(
                "unknown micro-benchmark `{other}`"
            )))
        }
    };
    let dir = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| "traces".into()));
    std::fs::create_dir_all(&dir).map_err(|e| CliError::run(format!("{}: {e}", dir.display())))?;

    // Real instrumentation; real hwmon sensors when present, simulated
    // Opteron bank otherwise (the portable fallback of §3.4).
    let hw = tempest_sensors::hwmon::HwmonSource::discover();
    let source: Box<dyn tempest_sensors::SensorSource> = if hw.is_available() {
        Box::new(hw)
    } else {
        Box::new(tempest_sensors::sim::SimulatedSensorBank::new(
            tempest_sensors::platform::PlatformSpec::opteron_full(),
            tempest_sensors::node_model::NodeThermalModel::new(
                tempest_sensors::node_model::NodeThermalParams::opteron_node(),
            ),
            7,
            0.1,
        ))
    };
    let session = tempest_probe::ProfilingSession::start_with_sensors(
        std::sync::Arc::new(tempest_probe::MonotonicClock::new()),
        source,
        tempest_probe::tempd::TempdConfig::at_rate(20.0),
    );
    {
        let tp = session.thread_profiler();
        run_native(micro, MicroConfig::default(), &tp);
    }
    let trace = session.finish();
    let path = dir.join(format!("micro-{}.trace", which.to_ascii_lowercase()));
    trace
        .save(&path)
        .map_err(|e| CliError::run(format!("{}: {e}", path.display())))?;
    let _ = writeln!(
        out,
        "recorded {} ({} events, {} samples over {:.3} s)",
        path.display(),
        trace.events.len(),
        trace.samples.len(),
        trace.span_ns() as f64 / 1e9
    );
    Ok(())
}

fn cmd_report(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos: Vec<String> = positional(args).into_iter().cloned().collect();
    if pos.is_empty() {
        return Err(CliError::usage("report: which trace file(s)?"));
    }
    let format = flag_value(args, "--format").unwrap_or_else(|| "text".into());
    if !matches!(format.as_str(), "text" | "csv" | "kv" | "md" | "json") {
        return Err(CliError::usage(format!("unknown format `{format}`")));
    }
    let common = parse_common_flags(args)?;
    let recover = flag_present(args, "--recover");
    let deadline = common.deadline();
    // A deadline makes partial output legitimate, so quality gets the
    // same visibility --recover gives it.
    let tolerant = recover || deadline.is_some();
    let cache = common.open_cache()?;
    // Analyse every node in parallel; render in input order (identical
    // output to the sequential loop, including failing on the first bad
    // trace by position). The rendered text — quality line included, so
    // cached bytes are complete — is what the cache stores and serves.
    let engine = Engine::new(common.jobs);
    let render = |profile: &tempest_core::NodeProfile| {
        let mut rendered = match format.as_str() {
            "text" => report::render_stdout(profile),
            "csv" => tempest_core::export::profile_to_csv(profile),
            "kv" => tempest_core::export::profile_to_kv(profile),
            "md" => tempest_core::export::profile_to_markdown(profile),
            "json" => tempest_core::export::profile_to_json(profile),
            _ => unreachable!("format validated above"),
        };
        // The JSON document carries quality in-band (the v1 DTO shape
        // must stay parseable); the text formats get the trailing line.
        if format != "json" && tolerant && !profile.quality.is_pristine() {
            rendered.push_str(&format!("data quality: {}\n", profile.quality));
        }
        rendered
    };
    let request = tempest_core::AnalysisRequest::new()
        .recover(recover)
        .deadline(deadline);
    for result in request.render_on(&engine, cache.as_ref(), &pos, &format, render) {
        let _ = write!(out, "{}", result.map_err(CliError::run)?);
    }
    common.finish(out);
    Ok(())
}

fn cmd_traits(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("traits: which trace file?"))?;
    let sensor: u16 = flag_value(args, "--sensor")
        .unwrap_or_else(|| "3".into())
        .parse()
        .map_err(|_| CliError::usage("--sensor wants an integer"))?;
    let trace = load_trace(path)?;
    let timeline = Timeline::build(&trace.events);
    let phases = tempest_core::phases::segment_phases(&trace.samples, SensorId(sensor), 4, 0.15);
    if phases.is_empty() {
        return Err(CliError::run("not enough samples to segment phases"));
    }
    let _ = writeln!(out, "thermal phases (sensor index {sensor}):");
    for p in &phases {
        let _ = writeln!(
            out,
            "  {:>8.1}s..{:>8.1}s  {:<8}  {:+6.2} F ({:+.3} F/s)",
            p.start_ns as f64 / 1e9,
            p.end_ns as f64 / 1e9,
            format!("{:?}", p.trend),
            p.delta_f,
            p.rate_f_per_s()
        );
    }
    let _ = writeln!(
        out,
        "
function thermal traits (dominant-phase warming rates):"
    );
    for t in tempest_core::phases::function_traits(&phases, &timeline) {
        let name = trace
            .function(t.func)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| format!("fn#{}", t.func.0));
        let _ = writeln!(
            out,
            "  {:<20} {:+7.3} F/s over {:>7.1}s",
            name, t.rate_f_per_s, t.seconds
        );
    }
    Ok(())
}

fn cmd_summary(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos: Vec<String> = positional(args).into_iter().cloned().collect();
    if pos.is_empty() {
        return Err(CliError::usage("summary: which trace file(s)?"));
    }
    let common = parse_common_flags(args)?;
    let recover = flag_present(args, "--recover");
    let request = tempest_core::AnalysisRequest::new()
        .jobs(common.jobs)
        .recover(recover)
        .deadline(common.deadline());
    let mut profiles = Vec::new();
    let mut lost = 0usize;
    for result in request.analyze(&pos).into_profiles() {
        match result {
            Ok(p) => profiles.push(p),
            // Partial-cluster tolerance under --recover: a node whose
            // trace is missing or unsalvageable is reported and skipped,
            // not fatal. Strict mode fails on the first bad node.
            Err(message) if recover => {
                lost += 1;
                let _ = writeln!(out, "skipping node: {message}");
            }
            Err(message) => return Err(CliError::run(message)),
        }
    }
    if profiles.is_empty() {
        return Err(CliError::run("no node trace could be recovered"));
    }
    let cluster = if recover {
        ClusterProfile::with_expected(profiles, pos.len())
    } else {
        ClusterProfile::new(profiles)
    };
    let _ = writeln!(out, "cluster of {} node(s):", cluster.node_count());
    if lost > 0 {
        let _ = writeln!(
            out,
            "  ({lost} of {} node trace(s) unrecoverable; statistics cover survivors only)",
            pos.len()
        );
    }
    for s in cluster.node_summaries() {
        let _ = writeln!(
            out,
            "  node {} ({})  avg {:>6.1} F  max {:>6.1} F",
            s.node_id + 1,
            s.hostname,
            s.avg_f,
            s.max_f
        );
    }
    if let Some((lo, hi)) = cluster.node_divergence_f() {
        let _ = writeln!(out, "  divergence across nodes: {:.1} F", hi - lo);
    }
    if recover && (lost > 0 || cluster.nodes.iter().any(|n| !n.quality.is_pristine())) {
        let _ = writeln!(out, "\ndata quality:");
        for line in cluster.quality_report().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(out, "\nhot spots (node 1):");
    for spot in tempest_core::analysis::hotspots(&cluster.nodes[0], 5) {
        let _ = writeln!(
            out,
            "  {:<20} avg {:>6.1} F  {:>7.2}s  score {:>8.2}",
            spot.name, spot.avg_f, spot.inclusive_secs, spot.score
        );
    }
    common.finish(out);
    Ok(())
}

/// `tempest spool recover`: rebuild a trace from an on-disk crash spool
/// written by the durable sink. Recovery is checksum-driven: every intact
/// frame prefix is kept, the torn tail (if any) is discarded, and the
/// result can optionally be materialised as a normal `.trace` file.
fn cmd_spool(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    match pos.first().map(|s| s.as_str()) {
        Some("recover") => {}
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown spool action `{other}` (only `recover`)"
            )))
        }
        None => return Err(CliError::usage("spool: which action? (recover)")),
    }
    let dir = pos
        .get(1)
        .ok_or_else(|| CliError::usage("spool recover: which spool directory?"))?;
    let dir_path = Path::new(dir.as_str());
    if !tempest_probe::spool::is_spool_dir(dir_path) {
        return Err(CliError::run(format!(
            "{dir}: not a tempest spool directory (no segment files)"
        )));
    }
    let (trace, rep) = tempest_probe::spool::recover(dir_path)
        .map_err(|e| CliError::run(format!("{dir}: {e}")))?;
    let shutdown = if rep.clean_shutdown {
        "clean shutdown (session footer present)"
    } else {
        "unclean shutdown (no session footer; crash or kill)"
    };
    let _ = writeln!(out, "{dir}: {shutdown}");
    let _ = writeln!(
        out,
        "  {} segment(s) scanned, {} frame(s) recovered, {} discarded",
        rep.segments_scanned, rep.frames_recovered, rep.frames_discarded
    );
    let _ = writeln!(
        out,
        "  recovered {} events, {} samples, {} function(s)",
        rep.events_recovered,
        rep.samples_recovered,
        trace.functions.len()
    );
    let shed_events = rep.salvage.events_dropped_backpressure;
    let shed_samples = rep.salvage.samples_dropped_backpressure;
    if shed_events + shed_samples > 0 {
        let _ = writeln!(
            out,
            "  writer backpressure shed {shed_events} event(s) / {shed_samples} sample(s) before shutdown"
        );
    }
    match flag_value(args, "--out") {
        Some(path) => {
            trace
                .save(Path::new(&path))
                .map_err(|e| CliError::run(format!("{path}: {e}")))?;
            let _ = writeln!(out, "wrote {path}");
        }
        None => {
            let _ = writeln!(
                out,
                "  (dry run: pass --out FILE to save the recovered trace)"
            );
        }
    }
    Ok(())
}

/// `tempest doctor`: triage trace files without analysing them in full.
/// For each file: try a strict read; if that fails, salvage and report
/// exactly what was lost; then pre-flight the decoded trace the way a
/// strict parse would. Exit code stays 0 — doctor diagnoses, it does not
/// judge.
fn cmd_doctor(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos: Vec<String> = positional(args).into_iter().cloned().collect();
    if pos.is_empty() {
        return Err(CliError::usage("doctor: which trace file(s)?"));
    }
    let fsck = flag_present(args, "--fsck");
    let common = parse_common_flags(args)?;
    let deadline = common.deadline();
    // Each file's triage is independent; fan it out and print the fully
    // rendered verdicts in input order.
    let engine = Engine::new(common.jobs);
    for rendered in engine.map(pos, move |path| triage_one(&path, fsck, deadline)) {
        let _ = write!(out, "{rendered}");
    }
    common.finish(out);
    Ok(())
}

/// Triage one trace file into doctor's rendered verdict block. Spool
/// directories (from the durable sink) are triaged via checksum recovery
/// rather than a strict file read.
fn triage_one(path: &str, fsck: bool, deadline: Option<std::time::Instant>) -> String {
    use std::fmt::Write as _;
    use tempest_probe::limits::{CancelToken, DecodeLimits};
    let as_path = Path::new(path);
    if as_path.is_dir() {
        if AnalysisCache::is_cache_dir(as_path) {
            return triage_cache_dir(path, as_path);
        }
        return triage_spool_dir(path, as_path, fsck, deadline);
    }
    let limits = DecodeLimits::default();
    let cancel = CancelToken::until_opt(deadline);
    let bytes = match std::fs::read(as_path) {
        Ok(bytes) => bytes,
        Err(e) => {
            let mut out = String::new();
            let _ = writeln!(out, "{path}: unreadable");
            let _ = writeln!(out, "  salvage failed: {e}");
            return out;
        }
    };
    let strict = Trace::decode_with(&bytes, &limits, &cancel);
    let (verdict, detail, trace) = match strict {
        Ok(trace) => ("ok", String::from("strict read clean"), Some(trace)),
        Err(strict_err) => match Trace::decode_salvage_with(&bytes, &limits, &cancel) {
            Ok((trace, rep)) => {
                let mut d = format!("strict read failed ({strict_err}); salvaged");
                if let Some(section) = rep.truncated_in {
                    d += &format!(
                        " — truncated in {section}: {}/{} events, {}/{} samples",
                        rep.events_salvaged,
                        rep.events_declared,
                        rep.samples_salvaged,
                        rep.samples_declared
                    );
                }
                if rep.nonfinite_samples_skipped > 0 {
                    d += &format!(
                        ", {} non-finite sample(s) dropped",
                        rep.nonfinite_samples_skipped
                    );
                }
                if let Some(limit) = rep.limit {
                    d += &format!(", stopped by limit: {limit}");
                }
                ("degraded", d, Some(trace))
            }
            Err(e) => ("unreadable", format!("salvage failed: {e}"), None),
        },
    };
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {verdict}");
    let _ = writeln!(out, "  {detail}");
    if let Some(trace) = trace {
        match ParseError::classify(&trace) {
            None => {
                let _ = writeln!(
                    out,
                    "  parse: clean ({} events, {} samples, {} function(s))",
                    trace.events.len(),
                    trace.samples.len(),
                    trace.functions.len()
                );
            }
            Some(problem) => {
                let _ = writeln!(out, "  parse: {problem}");
                let _ = writeln!(out, "  hint: re-run with --recover to analyse anyway");
            }
        }
    }
    out
}

/// Render the flight-recorder dump beside a spool (`flight.json`), if
/// one exists: why it was dumped and the last few structured events —
/// the first thing to read when triaging a degraded pipeline.
fn render_flight_report(dir: &Path) -> Option<String> {
    use std::fmt::Write as _;
    let path = dir.join(tempest_probe::spool::FLIGHT_DUMP_NAME);
    let text = std::fs::read_to_string(&path).ok()?;
    let mut out = String::new();
    match tempest_obs::Json::parse(&text) {
        Ok(v) => {
            let reason = v.get("reason").and_then(|r| r.as_str()).unwrap_or("?");
            let events = v.get("events").and_then(|e| e.as_arr()).unwrap_or(&[]);
            let _ = writeln!(
                out,
                "  flight recorder: dumped on \"{reason}\", {} event(s)",
                events.len()
            );
            const SHOWN: usize = 5;
            if events.len() > SHOWN {
                let _ = writeln!(out, "    … {} earlier event(s)", events.len() - SHOWN);
            }
            for e in events.iter().rev().take(SHOWN).rev() {
                let level = e.get("level").and_then(|l| l.as_str()).unwrap_or("?");
                let target = e.get("target").and_then(|t| t.as_str()).unwrap_or("?");
                let message = e.get("message").and_then(|m| m.as_str()).unwrap_or("?");
                let _ = writeln!(out, "    [{level}] {target}: {message}");
            }
        }
        Err(e) => {
            let _ = writeln!(
                out,
                "  flight recorder: {} unreadable ({e})",
                path.display()
            );
        }
    }
    Some(out)
}

/// Doctor verdict for a spool directory: run checksum recovery and report
/// what survived. An unclean shutdown or discarded frames downgrade the
/// verdict to `degraded`; a directory without segment files is `unreadable`.
fn triage_spool_dir(
    path: &str,
    dir: &Path,
    fsck: bool,
    deadline: Option<std::time::Instant>,
) -> String {
    use std::fmt::Write as _;
    use tempest_probe::limits::{CancelToken, DecodeLimits};
    let mut out = String::new();
    if !tempest_probe::spool::is_spool_dir(dir) {
        let _ = writeln!(out, "{path}: unreadable");
        let _ = writeln!(
            out,
            "  directory, but not a tempest spool (no segment files)"
        );
        return out;
    }
    // Deep verification (--fsck): re-decode every checksum-valid frame
    // under strict limits. A frame can pass its CRC yet declare hostile
    // quantities, so violations downgrade the verdict even when plain
    // recovery succeeds.
    let fsck_segments = if fsck {
        match tempest_probe::spool::fsck_dir(dir, &DecodeLimits::strict()) {
            Ok(segments) => Some(segments),
            Err(e) => {
                let _ = writeln!(out, "{path}: unreadable");
                let _ = writeln!(out, "  fsck failed: {e}");
                return out;
            }
        }
    } else {
        None
    };
    let fsck_dirty = fsck_segments
        .as_ref()
        .is_some_and(|segments| segments.iter().any(|s| !s.is_clean()));
    // Manifest-vs-disk audit first: a clean-looking spool whose manifest
    // disagrees with the segment files on disk (missing, unexpected, or
    // unsealed segments) is degraded no matter how well recovery went.
    let manifest_problems = match tempest_probe::spool::check_manifest(dir) {
        Ok(Some(check)) if !check.consistent() => check.problems(),
        Ok(_) => Vec::new(),
        Err(e) => vec![format!("manifest unreadable: {e}")],
    };
    match tempest_probe::spool::recover_with(
        dir,
        &DecodeLimits::default(),
        &CancelToken::until_opt(deadline),
    ) {
        Ok((trace, rep)) => {
            let verdict = if rep.clean_shutdown
                && rep.frames_discarded == 0
                && manifest_problems.is_empty()
                && !fsck_dirty
            {
                "ok"
            } else {
                "degraded"
            };
            let _ = writeln!(out, "{path}: {verdict}");
            for problem in &manifest_problems {
                let _ = writeln!(out, "  manifest: {problem}");
            }
            let _ = writeln!(
                out,
                "  spool: {} segment(s), {} frame(s) recovered, {} discarded, {} shutdown",
                rep.segments_scanned,
                rep.frames_recovered,
                rep.frames_discarded,
                if rep.clean_shutdown {
                    "clean"
                } else {
                    "unclean"
                }
            );
            if let Some(limit) = rep.salvage.limit {
                let _ = writeln!(out, "  stopped by limit: {limit}");
            }
            if let Some(segments) = &fsck_segments {
                for seg in segments {
                    let name = seg
                        .path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("segment");
                    let _ = writeln!(
                        out,
                        "  fsck {name}: {} frame(s) verified, {} torn",
                        seg.frames_ok, seg.frames_torn
                    );
                    for violation in &seg.violations {
                        let _ = writeln!(out, "    violation: {violation}");
                    }
                }
            }
            let _ = writeln!(
                out,
                "  recovered {} events, {} samples, {} function(s)",
                rep.events_recovered,
                rep.samples_recovered,
                trace.functions.len()
            );
            // The session footer (clean shutdowns only) carries exact
            // backpressure shed counts; show them in human units.
            let shed_events = rep.salvage.events_dropped_backpressure;
            let shed_samples = rep.salvage.samples_dropped_backpressure;
            if rep.clean_shutdown || shed_events + shed_samples > 0 {
                let _ = writeln!(
                    out,
                    "  backpressure: {} event(s), {} sample(s) dropped",
                    tempest_obs::human_count(shed_events),
                    tempest_obs::human_count(shed_samples),
                );
            }
            // Network-collection context. A persisted ship cursor means
            // some shipper sent this spool out; shipped_through means the
            // spool itself IS a collector-side copy (frames arrived
            // wrapped with their source cursor).
            if let Some(cursor) = tempest_probe::ship::Cursor::load(dir) {
                let _ = writeln!(
                    out,
                    "  shipping: acked through segment {} offset {} (resume cursor on disk)",
                    cursor.seg, cursor.off
                );
            }
            if let Some((seg, off)) = rep.shipped_through {
                let _ = writeln!(
                    out,
                    "  collected session: source frames through segment {seg} offset {off}, {} duplicate frame(s) dropped",
                    rep.frames_deduped
                );
            }
            if rep.telemetry_frames > 0 {
                let _ = writeln!(
                    out,
                    "  telemetry: {} snapshot(s) spooled",
                    rep.telemetry_frames
                );
            }
            if !rep.frame_traces.is_empty() {
                let mut transits: Vec<u64> = rep
                    .frame_traces
                    .iter()
                    .filter_map(|t| t.transit_ns())
                    .collect();
                transits.sort_unstable();
                let median = transits.get(transits.len() / 2).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  frame traces: {} frame(s), median ship→collect {}",
                    rep.frame_traces.len(),
                    tempest_obs::human_ns(median)
                );
            }
            if let Some(flight) = render_flight_report(dir) {
                let _ = write!(out, "{flight}");
            }
            if verdict == "degraded" {
                let _ = writeln!(
                    out,
                    "  hint: `tempest spool recover {path} --out FILE` saves the salvaged prefix"
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "{path}: unreadable");
            let _ = writeln!(out, "  spool recovery failed: {e}");
            if let Some(flight) = render_flight_report(dir) {
                let _ = write!(out, "{flight}");
            }
        }
    }
    out
}

/// Doctor verdict for an analysis cache directory: report version,
/// entry count/volume, and anything that shouldn't be there. Stale
/// entries (written by another cache version) or foreign files (torn
/// temps, unrelated content) downgrade the verdict to `degraded`.
fn triage_cache_dir(path: &str, dir: &Path) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match AnalysisCache::audit(dir) {
        Ok(audit) => {
            let current = audit.version == Some(tempest_core::cache::CACHE_VERSION);
            let verdict = if current && audit.stale == 0 && audit.foreign == 0 {
                "ok"
            } else {
                "degraded"
            };
            let _ = writeln!(out, "{path}: {verdict}");
            let _ = writeln!(
                out,
                "  analysis cache v{}: {} entr{}, {}",
                audit.version.map_or_else(|| "?".into(), |v| v.to_string()),
                audit.entries,
                if audit.entries == 1 { "y" } else { "ies" },
                tempest_obs::human_bytes(audit.bytes),
            );
            if !current {
                let _ = writeln!(
                    out,
                    "  version mismatch: tempest expects v{} — every entry is stale",
                    tempest_core::cache::CACHE_VERSION
                );
            }
            if audit.stale > 0 {
                let _ = writeln!(
                    out,
                    "  {} stale entr{} (discarded on next cached run)",
                    audit.stale,
                    if audit.stale == 1 { "y" } else { "ies" }
                );
            }
            if audit.foreign > 0 {
                let _ = writeln!(
                    out,
                    "  {} foreign file(s) — torn temp files or content tempest never wrote",
                    audit.foreign
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "{path}: unreadable");
            let _ = writeln!(out, "  cache audit failed: {e}");
        }
    }
    out
}

fn cmd_plot(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("plot: which trace file?"))?;
    let sensor: u16 = flag_value(args, "--sensor")
        .unwrap_or_else(|| "3".into())
        .parse()
        .map_err(|_| CliError::usage("--sensor wants an integer"))?;
    let trace = load_trace(path)?;
    let timeline = Timeline::build(&trace.events);
    let names: Vec<String> = trace.functions.iter().map(|f| f.name.clone()).collect();
    let name_of = move |id: u32| {
        names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("fn#{id}"))
    };
    let label = trace
        .node
        .sensors
        .iter()
        .find(|s| s.id == SensorId(sensor))
        .map(|s| s.label.clone())
        .unwrap_or_else(|| format!("sensor{}", sensor + 1));
    let series = TimeSeries::from_samples(label, &trace.samples, SensorId(sensor), 0);
    if series.points.is_empty() {
        return Err(CliError::run(format!(
            "no samples for sensor index {sensor}"
        )));
    }
    let _ = writeln!(
        out,
        "function: {}",
        function_banner(&timeline, &name_of, 72)
    );
    let _ = write!(out, "{}", ascii_plot(&[series], 72, 16));
    Ok(())
}

fn cmd_callgraph(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("callgraph: which trace file?"))?;
    let trace = load_trace(path)?;
    let timeline = Timeline::build(&trace.events);
    let graph = tempest_core::callgraph::CallGraph::build(&timeline);
    let names: Vec<String> = trace.functions.iter().map(|f| f.name.clone()).collect();
    let name_of = move |f: tempest_probe::func::FunctionId| {
        names
            .get(f.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("fn#{}", f.0))
    };
    let _ = write!(out, "{}", graph.render(&name_of));
    Ok(())
}

fn cmd_gprof(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("gprof: which trace file?"))?;
    let trace = load_trace(path)?;
    let flat = tempest_gprof::FlatProfile::from_events(&trace.events);
    let _ = write!(out, "{}", flat.render(&trace.functions));
    Ok(())
}

fn cmd_dump(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("dump: which trace file?"))?;
    let trace = load_trace(path)?;
    let _ = write!(out, "{}", trace.to_text());
    Ok(())
}

fn cmd_sensors(out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use tempest_sensors::source::SensorSource;
    let mut hw = tempest_sensors::hwmon::HwmonSource::discover();
    if !hw.is_available() {
        let _ = writeln!(
            out,
            "no hwmon/thermal sensors exposed on this host (container/VM?)"
        );
        return Ok(());
    }
    let readings = hw.sample_all(0);
    for (info, r) in hw.sensors().iter().zip(&readings) {
        let _ = writeln!(
            out,
            "{:<32} {:<12} {:>7.1} C",
            info.label,
            format!("{:?}", info.kind),
            r.temperature.celsius()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        main_with_args(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tempest-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn demo_then_report_then_plot_roundtrip() {
        let dir = temp_dir("demo");
        let dir_s = dir.to_str().unwrap();
        let out = run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        assert!(out.contains("wrote"));
        let trace_path = dir.join("micro-d-node0.trace");
        assert!(trace_path.exists());
        let trace_s = trace_path.to_str().unwrap();

        let report = run(&["report", trace_s]).unwrap();
        assert!(report.contains("Function: main"));
        assert!(report.contains("Min"));

        let plot = run(&["plot", trace_s]).unwrap();
        assert!(plot.contains("function:"));
        assert!(plot.contains('|'));

        let gprof = run(&["gprof", trace_s]).unwrap();
        assert!(gprof.contains("cumulative"));

        let dump = run(&["dump", trace_s]).unwrap();
        assert!(dump.contains("# tempest trace"));

        let md = run(&["report", trace_s, "--format", "md"]).unwrap();
        assert!(md.contains("| sensor |"));
        let csv = run(&["report", trace_s, "--format", "csv"]).unwrap();
        assert!(csv.starts_with("node,function,"));
        let kv = run(&["report", trace_s, "--format", "kv"]).unwrap();
        assert!(kv.contains("function main"));
        let traits = run(&["traits", trace_s]).unwrap();
        assert!(traits.contains("thermal phases"));
        assert!(traits.contains("F/s"));
        let graph = run(&["callgraph", trace_s]).unwrap();
        assert!(graph.contains("main"));
        assert!(graph.contains("->"));

        let summary = run(&["summary", trace_s]).unwrap();
        assert!(summary.contains("cluster of 1 node"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_npb_multi_node() {
        let dir = temp_dir("npb");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "cg", "--class", "A", "--np", "4", "--out", dir_s]).unwrap();
        for n in 0..4 {
            assert!(dir.join(format!("cg-node{n}.trace")).exists());
        }
        // Summary over all four nodes.
        let traces: Vec<String> = (0..4)
            .map(|n| {
                dir.join(format!("cg-node{n}.trace"))
                    .to_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        let args: Vec<&str> = std::iter::once("summary")
            .chain(traces.iter().map(String::as_str))
            .collect();
        let out = run(&args).unwrap();
        assert!(out.contains("cluster of 4 node(s)"));
        assert!(out.contains("divergence"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jobs_flag_does_not_change_output() {
        let dir = temp_dir("jobs");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "cg", "--class", "A", "--np", "4", "--out", dir_s]).unwrap();
        let traces: Vec<String> = (0..4)
            .map(|n| {
                dir.join(format!("cg-node{n}.trace"))
                    .to_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        for verb in ["report", "summary", "doctor"] {
            let mut base: Vec<&str> = vec![verb];
            base.extend(traces.iter().map(String::as_str));
            let seq = run(&[base.clone(), vec!["--jobs", "1"]].concat()).unwrap();
            let par = run(&[base.clone(), vec!["--jobs", "4"]].concat()).unwrap();
            assert_eq!(seq, par, "{verb} output must not depend on --jobs");
            assert!(!seq.is_empty());
        }
        let err = run(&["report", "x.trace", "--jobs", "lots"]).unwrap_err();
        assert_eq!(err.code, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_missing_file_is_run_error() {
        let err = run(&["report", "/nonexistent/x.trace"]).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn bad_class_rejected() {
        let err = run(&["demo", "ft", "--class", "Z"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn record_native_micro_benchmark() {
        let dir = temp_dir("record");
        let dir_s = dir.to_str().unwrap();
        let out = run(&["record", "d", "--out", dir_s]).unwrap();
        assert!(out.contains("recorded"));
        let trace_path = dir.join("micro-d.trace");
        let report = run(&["report", trace_path.to_str().unwrap()]).unwrap();
        assert!(report.contains("Function: main"));
        assert!(report.contains("Function: foo1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sensors_runs_anywhere() {
        let out = run(&["sensors"]).unwrap();
        assert!(!out.is_empty());
    }

    /// Write a demo trace and a 60%-truncated copy of it; return both paths.
    fn good_and_truncated(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
        let dir = temp_dir(tag);
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        let good = dir.join("micro-d-node0.trace");
        let bytes = std::fs::read(&good).unwrap();
        let cut = dir.join("truncated.trace");
        std::fs::write(&cut, &bytes[..bytes.len() * 6 / 10]).unwrap();
        (dir, good, cut)
    }

    #[test]
    fn doctor_triages_good_and_damaged_traces() {
        let (dir, good, cut) = good_and_truncated("doctor");
        let out = run(&["doctor", good.to_str().unwrap()]).unwrap();
        assert!(out.contains(": ok"), "{out}");
        assert!(out.contains("parse: clean"), "{out}");

        let out = run(&["doctor", cut.to_str().unwrap()]).unwrap();
        assert!(out.contains(": degraded"), "{out}");
        assert!(out.contains("truncated in"), "{out}");

        let out = run(&["doctor", "/nonexistent/x.trace"]).unwrap();
        assert!(out.contains(": unreadable"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_recover_salvages_truncated_trace() {
        let (dir, _good, cut) = good_and_truncated("recover");
        // Strict report refuses the damaged file...
        let err = run(&["report", cut.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, 1);
        // ...but --recover produces a profile plus a quality line.
        let out = run(&["report", cut.to_str().unwrap(), "--recover"]).unwrap();
        assert!(out.contains("Function: main"), "{out}");
        assert!(out.contains("data quality:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Write a small spool under a fresh temp dir. `clean` finishes the
    /// writer (symbols + footer); otherwise the writer is dropped mid-flight,
    /// leaving an unsealed `.open` segment with no footer — a crash.
    fn write_spool(tag: &str, clean: bool) -> (PathBuf, PathBuf) {
        use tempest_probe::spool::{SpoolConfig, SpoolWriter};
        use tempest_probe::{Event, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
        let parent = temp_dir(tag);
        let dir = parent.join("spool");
        let cfg = SpoolConfig::new(&dir);
        let mut w = SpoolWriter::create(&cfg, NodeMeta::anonymous()).unwrap();
        let t = ThreadId(0);
        let mut batch = Vec::new();
        for i in 0..10u64 {
            batch.push(Event::enter(i * 1_000_000, t, FunctionId(0)));
            batch.push(Event::sample(
                i * 1_000_000 + 10,
                SensorId(0),
                40.0 + i as f64,
            ));
            batch.push(Event::exit(i * 1_000_000 + 500_000, t, FunctionId(0)));
        }
        w.append_batch(&batch).unwrap();
        if clean {
            let funcs = vec![FunctionDef {
                id: FunctionId(0),
                name: "main".into(),
                address: 0x1000,
                kind: ScopeKind::Function,
            }];
            w.finish(&funcs, 0, 0).unwrap();
        }
        (parent, dir)
    }

    #[test]
    fn report_and_summary_accept_deadline_flag() {
        let dir = temp_dir("deadline");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        let trace = dir.join("micro-d-node0.trace");
        let trace_s = trace.to_str().unwrap();
        // A generous deadline on a tiny trace never trips: full output,
        // no quality line.
        let out = run(&["report", trace_s, "--deadline", "60", "--no-cache"]).unwrap();
        assert!(out.contains("Function: main"), "{out}");
        assert!(!out.contains("deadline hit"), "{out}");
        let out = run(&["summary", trace_s, "--deadline", "60"]).unwrap();
        assert!(out.contains("cluster of 1 node"), "{out}");
        let err = run(&["report", trace_s, "--deadline", "soon"]).unwrap_err();
        assert_eq!(err.code, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_fsck_deep_verifies_spool_segments() {
        let (parent, dir) = write_spool("fsck-clean", true);
        let out = run(&["doctor", dir.to_str().unwrap(), "--fsck"]).unwrap();
        assert!(out.contains(": ok"), "{out}");
        assert!(out.contains("fsck seg-"), "{out}");
        assert!(out.contains("verified"), "{out}");
        std::fs::remove_dir_all(&parent).ok();

        // Tear the tail of a segment: fsck reports the torn frame per
        // segment and the verdict degrades.
        let (parent, dir) = write_spool("fsck-torn", true);
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();
        let out = run(&["doctor", dir.to_str().unwrap(), "--fsck"]).unwrap();
        assert!(out.contains(": degraded"), "{out}");
        assert!(out.contains("1 torn"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn spool_recover_rebuilds_and_saves_a_trace() {
        let (parent, dir) = write_spool("spool-clean", true);
        let dir_s = dir.to_str().unwrap();

        let out = run(&["spool", "recover", dir_s]).unwrap();
        assert!(out.contains("clean shutdown"), "{out}");
        assert!(out.contains("recovered 20 events, 10 samples"), "{out}");
        assert!(out.contains("dry run"), "{out}");

        let saved = parent.join("recovered.trace");
        let saved_s = saved.to_str().unwrap();
        let out = run(&["spool", "recover", dir_s, "--out", saved_s]).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let report = run(&["report", saved_s]).unwrap();
        assert!(report.contains("Function: main"), "{report}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn spool_recover_flags_crashed_session() {
        let (parent, dir) = write_spool("spool-crash", false);
        let out = run(&["spool", "recover", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("unclean shutdown"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn spool_usage_errors() {
        assert_eq!(run(&["spool"]).unwrap_err().code, 2);
        assert_eq!(run(&["spool", "frobnicate"]).unwrap_err().code, 2);
        assert_eq!(run(&["spool", "recover"]).unwrap_err().code, 2);
        assert_eq!(
            run(&["spool", "recover", "/nonexistent"]).unwrap_err().code,
            1
        );
    }

    #[test]
    fn doctor_triages_spool_directories() {
        let (parent, dir) = write_spool("doctor-spool", true);
        let out = run(&["doctor", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains(": ok"), "{out}");
        assert!(out.contains("clean shutdown"), "{out}");
        std::fs::remove_dir_all(&parent).ok();

        let (parent, dir) = write_spool("doctor-spool-crash", false);
        let out = run(&["doctor", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains(": degraded"), "{out}");
        assert!(out.contains("unclean shutdown"), "{out}");
        assert!(out.contains("spool recover"), "{out}");

        let empty = parent.join("not-a-spool");
        std::fs::create_dir_all(&empty).unwrap();
        let out = run(&["doctor", empty.to_str().unwrap()]).unwrap();
        assert!(out.contains(": unreadable"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn export_chrome_trace_roundtrips_through_json_parser() {
        let dir = temp_dir("export");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        let trace = dir.join("micro-d-node0.trace");
        let trace_s = trace.to_str().unwrap();

        let doc = run(&["export", trace_s]).unwrap();
        let parsed = tempest_obs::Json::parse(&doc).expect("export must be valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());

        let out_file = dir.join("trace.json");
        let out_s = out_file.to_str().unwrap();
        let msg = run(&["export", trace_s, "--out", out_s]).unwrap();
        assert!(msg.contains("perfetto"), "{msg}");
        let saved = std::fs::read_to_string(&out_file).unwrap();
        assert_eq!(saved, doc, "--out must write the same document");

        assert_eq!(run(&["export"]).unwrap_err().code, 2);
        assert_eq!(
            run(&["export", trace_s, "--format", "svg"])
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_command_prints_stage_timings() {
        let dir = temp_dir("metrics");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        let trace = dir.join("micro-d-node0.trace");
        let trace_s = trace.to_str().unwrap();

        let human = run(&["metrics", trace_s]).unwrap();
        assert!(human.contains("stage_decode_ns"), "{human}");
        assert!(human.contains("stage_correlate_ns"), "{human}");

        let prom = run(&["metrics", trace_s, "--format", "prom"]).unwrap();
        assert!(prom.contains("# TYPE"), "{prom}");

        let json = run(&["metrics", trace_s, "--format", "json"]).unwrap();
        let parsed = tempest_obs::Json::parse(&json).expect("metrics JSON must parse");
        assert!(parsed.get("histograms").is_some());

        assert_eq!(run(&["metrics"]).unwrap_err().code, 2);
        assert_eq!(
            run(&["metrics", trace_s, "--format", "xml"])
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_metrics_flag_appends_snapshot() {
        let dir = temp_dir("report-metrics");
        let dir_s = dir.to_str().unwrap();
        run(&["demo", "micro-d", "--out", dir_s]).unwrap();
        let trace = dir.join("micro-d-node0.trace");
        let trace_s = trace.to_str().unwrap();
        for verb in ["report", "summary", "doctor"] {
            let out = run(&[verb, trace_s, "--metrics"]).unwrap();
            assert!(out.contains("self-metrics:"), "{verb}: {out}");
        }
        // Without the flag the tail is absent.
        let out = run(&["report", trace_s]).unwrap();
        assert!(!out.contains("self-metrics:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_prints_backpressure_drops_in_human_units() {
        let (parent, dir) = write_spool("doctor-drops", true);
        let out = run(&["doctor", dir.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("backpressure: 0 event(s), 0 sample(s) dropped"),
            "{out}"
        );
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn watch_frame_golden_shape_includes_drops_and_backpressure() {
        use tempest_probe::spool::{SpoolConfig, SpoolWriter};
        use tempest_probe::{Event, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
        let parent = temp_dir("watch-golden");
        let dir = parent.join("spool");
        let mut w = SpoolWriter::create(&SpoolConfig::new(&dir), NodeMeta::anonymous()).unwrap();
        let t = ThreadId(0);
        let mut batch = Vec::new();
        for i in 0..10u64 {
            batch.push(Event::enter(i * 1_000_000, t, FunctionId(0)));
            batch.push(Event::sample(
                i * 1_000_000 + 10,
                SensorId(0),
                40.0 + i as f64,
            ));
            batch.push(Event::exit(i * 1_000_000 + 500_000, t, FunctionId(0)));
        }
        w.append_batch(&batch).unwrap();
        let funcs = vec![FunctionDef {
            id: FunctionId(0),
            name: "main".into(),
            address: 0x1000,
            kind: ScopeKind::Function,
        }];
        // Seal with shed counts so the drops line carries real numbers.
        w.finish(&funcs, 3, 2).unwrap();

        let frame = render_watch_frame(&dir, None, 2.0).unwrap();
        assert_eq!(frame.events, 20);
        assert_eq!(frame.samples, 10);
        let lines: Vec<&str> = frame.rendered.lines().collect();
        // Golden shape, line by line: header, events, samples, drops,
        // hottest, then the hotspot list.
        assert!(lines[0].starts_with("spool "), "{}", frame.rendered);
        assert!(lines[0].ends_with("clean shutdown"), "{}", frame.rendered);
        assert!(lines[1].trim_start().starts_with("events"), "{}", lines[1]);
        assert!(lines[1].contains("/s)"), "{}", lines[1]);
        assert!(lines[2].trim_start().starts_with("samples"), "{}", lines[2]);
        assert_eq!(lines[3].trim(), "drops    3 event(s), 2 sample(s) shed");
        assert_eq!(lines[4].trim(), "hottest  sensor#0  49.0 C");
        assert!(
            lines[5].contains("top hot functions so far:"),
            "{}",
            lines[5]
        );
        assert!(lines[6].contains("main"), "{}", lines[6]);
        assert!(lines[6].contains("score"), "{}", lines[6]);

        // With a previous frame, rates are deltas over the interval:
        // (20 - 10) events in 2s is 5/s.
        let frame = render_watch_frame(&dir, Some((10, 6)), 2.0).unwrap();
        assert!(frame.rendered.contains("(5/s)"), "{}", frame.rendered);
        assert!(frame.rendered.contains("(2/s)"), "{}", frame.rendered);
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn fleet_dir_mode_renders_table_json_and_prom() {
        // A sealed spool: finish() appends one telemetry snapshot, which
        // is exactly what the offline fleet scan aggregates.
        let (parent, dir) = write_spool("fleet-dir", true);
        let dir_s = dir.to_str().unwrap();

        let table = run(&["fleet", dir_s, "--count", "1"]).unwrap();
        assert!(table.contains("fleet: 1 node(s), 0 stale"), "{table}");
        assert!(table.contains("NODE"), "{table}");
        assert!(table.contains("HOTTEST"), "{table}");
        assert!(table.contains("spool"), "{table}");

        let json = run(&["fleet", dir_s, "--json"]).unwrap();
        let v = tempest_obs::Json::parse(&json).expect("fleet json must parse");
        assert_eq!(v.get("node_count").and_then(|n| n.as_f64()), Some(1.0));
        let nodes = v.get("nodes").and_then(|n| n.as_arr()).unwrap();
        assert!(nodes[0].get("metrics").is_some(), "{json}");

        let prom = run(&["fleet", dir_s, "--prom"]).unwrap();
        assert!(prom.contains("fleet_nodes 1"), "{prom}");
        assert!(prom.contains("fleet_node_counter{node="), "{prom}");

        // Usage: a target is required, machine modes are exclusive.
        assert_eq!(run(&["fleet"]).unwrap_err().code, 2);
        assert_eq!(
            run(&["fleet", dir_s, "--json", "--prom"]).unwrap_err().code,
            2
        );

        // A spool with no telemetry yet: machine modes fail loudly so a
        // parser never sees an error as data, the table reports and moves on.
        let (parent2, dir2) = write_spool("fleet-dir-empty", false);
        let err = run(&["fleet", dir2.to_str().unwrap(), "--json"]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("no telemetry"), "{}", err.message);
        let out = run(&["fleet", dir2.to_str().unwrap(), "--count", "1"]).unwrap();
        assert!(out.contains("no telemetry"), "{out}");

        std::fs::remove_dir_all(&parent).ok();
        std::fs::remove_dir_all(&parent2).ok();
    }

    #[test]
    fn doctor_surfaces_flight_recorder_dump() {
        use tempest_obs::flight::FlightRecorder;
        use tempest_obs::FlightLevel;
        let (parent, dir) = write_spool("doctor-flight", true);
        // Simulate a degraded pipeline dumping its black box beside the
        // spool: 8 events, so the report elides all but the last 5.
        let rec = FlightRecorder::new(16);
        for i in 0..8 {
            rec.record_parts(
                FlightLevel::Warn,
                "ship",
                format!("retrying connect #{i}"),
                vec![("attempt".into(), i.to_string())],
            );
        }
        rec.dump_to(
            &dir.join(tempest_probe::spool::FLIGHT_DUMP_NAME),
            "injected degradation",
        )
        .unwrap();

        let out = run(&["doctor", dir.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("flight recorder: dumped on \"injected degradation\", 8 event(s)"),
            "{out}"
        );
        assert!(out.contains("… 3 earlier event(s)"), "{out}");
        assert!(out.contains("[warn] ship: retrying connect #7"), "{out}");
        assert!(!out.contains("retrying connect #0"), "{out}");

        // A corrupt dump degrades to a note, never an error.
        std::fs::write(
            dir.join(tempest_probe::spool::FLIGHT_DUMP_NAME),
            "{not json",
        )
        .unwrap();
        let out = run(&["doctor", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("unreadable"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn watch_renders_live_then_finished_spool() {
        use std::sync::Arc;
        use tempest_probe::spool::SpoolConfig;
        use tempest_probe::{MonotonicClock, SpooledSession, TempdConfig};

        let parent = temp_dir("watch");
        let dir = parent.join("spool");
        let session = SpooledSession::start(
            SpoolConfig::new(&dir),
            Arc::new(MonotonicClock::new()),
            None,
            TempdConfig::default(),
        )
        .unwrap();
        {
            let tp = session.thread_profiler();
            for _ in 0..100 {
                let _g = tp.scope("busy_loop");
            }
            tp.flush();
        }
        // The writer thread persists asynchronously; wait for the batch to
        // land before watching.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if tempest_probe::spool::is_spool_dir(&dir) {
                if let Ok((_, rep)) = tempest_probe::spool::recover(&dir) {
                    if rep.events_recovered >= 200 {
                        break;
                    }
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "spool writer never persisted the batch"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        // One frame from the actively-written (unclean, live) spool.
        let dir_s = dir.to_str().unwrap();
        let out = run(&["watch", dir_s, "--count", "1"]).unwrap();
        assert!(out.contains("live/unclean"), "{out}");
        assert!(out.contains("events"), "{out}");
        assert!(out.contains("200"), "{out}");

        session.finish().unwrap();
        // Two frames from the sealed spool: totals plus a refresh escape.
        let out = run(&["watch", dir_s, "--count", "2", "--interval", "0"]).unwrap();
        assert!(out.contains("clean"), "{out}");
        assert!(
            out.contains("\x1b[2J"),
            "second frame must clear the screen"
        );

        // Usage and not-a-spool handling.
        assert_eq!(run(&["watch"]).unwrap_err().code, 2);
        let empty = parent.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let out = run(&["watch", empty.to_str().unwrap(), "--count", "1"]).unwrap();
        assert!(out.contains("waiting for spool"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn collect_serve_and_ship_roundtrip_through_the_cli() {
        let parent = temp_dir("cli-ship");
        // A sealed session to ship.
        let (src_parent, spool) = write_spool("cli-ship-src", true);
        let collected = parent.join("collected");
        let port_file = parent.join("collector.addr");

        // Serve exactly one connection on an ephemeral port, publishing
        // the bound address through --port-file.
        let serve_args: Vec<String> = [
            "collect",
            "serve",
            "--out",
            collected.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--once",
            "1",
            "--port-file",
            port_file.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            main_with_args(&serve_args, &mut buf).map(|()| String::from_utf8(buf).unwrap())
        });

        // The port file appears atomically once the listener is bound.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().to_string();
            }
            assert!(
                std::time::Instant::now() < deadline,
                "collector never published its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let out = run(&[
            "ship",
            spool.to_str().unwrap(),
            "--to",
            &addr,
            "--session",
            "clitest",
            "--retries",
            "10",
            "--base-ms",
            "1",
        ])
        .unwrap();
        assert!(out.contains("session complete"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("collecting on"), "{served}");
        assert!(served.contains("1 session(s) completed"), "{served}");

        // Doctor knows both sides of the wire: the source spool carries a
        // resume cursor, the collected copy knows its source provenance.
        let src_doc = run(&["doctor", spool.to_str().unwrap()]).unwrap();
        assert!(src_doc.contains("shipping: acked through"), "{src_doc}");
        let dst = collected.join("clitest-node0");
        let dst_doc = run(&["doctor", dst.to_str().unwrap()]).unwrap();
        assert!(dst_doc.contains(": ok"), "{dst_doc}");
        assert!(dst_doc.contains("collected session"), "{dst_doc}");
        assert!(dst_doc.contains("0 duplicate frame(s)"), "{dst_doc}");

        // The collected copy is a first-class spool: recover + report.
        let report = run(&["spool", "recover", dst.to_str().unwrap()]).unwrap();
        assert!(report.contains("clean shutdown"), "{report}");

        // The shipped telemetry snapshot and the per-frame origin stamps
        // both survived the wire: doctor reads them off the collected copy.
        assert!(
            dst_doc.contains("telemetry: 1 snapshot(s) spooled"),
            "{dst_doc}"
        );
        assert!(dst_doc.contains("frame traces:"), "{dst_doc}");
        assert!(dst_doc.contains("median ship→collect"), "{dst_doc}");

        // Offline fleet view over the collector's output directory.
        let fleet = run(&["fleet", collected.to_str().unwrap(), "--json"]).unwrap();
        let v = tempest_obs::Json::parse(&fleet).expect("fleet json must parse");
        assert_eq!(v.get("node_count").and_then(|n| n.as_f64()), Some(1.0));
        let table = run(&["fleet", collected.to_str().unwrap(), "--count", "1"]).unwrap();
        assert!(table.contains("clitest-node0"), "{table}");

        // Cross-node frame-latency export from the same directory.
        let trace_path = parent.join("fleet-latency.json");
        let exported = run(&[
            "export",
            dst.to_str().unwrap(),
            "--format",
            "fleet-trace",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(exported.contains("wrote"), "{exported}");
        let doc = std::fs::read_to_string(&trace_path).unwrap();
        let parsed = tempest_obs::Json::parse(&doc).expect("fleet trace must parse");
        let events = parsed.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str())
                        == Some("ship→collect")
            }),
            "{doc}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("cat").and_then(|c| c.as_str()) == Some("ship")),
            "{doc}"
        );
        std::fs::remove_dir_all(&parent).ok();
        std::fs::remove_dir_all(&src_parent).ok();
    }

    #[test]
    fn collect_and_ship_usage_errors() {
        assert_eq!(run(&["collect"]).unwrap_err().code, 2);
        assert_eq!(run(&["collect", "frobnicate"]).unwrap_err().code, 2);
        assert_eq!(run(&["collect", "serve"]).unwrap_err().code, 2); // no --out
        assert_eq!(
            run(&["collect", "serve", "--out", "x", "--shed", "panic"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(run(&["ship"]).unwrap_err().code, 2);
        assert_eq!(run(&["ship", "somedir"]).unwrap_err().code, 2); // no --to
                                                                    // Missing spool directory is a runtime error, not usage.
        assert_eq!(
            run(&["ship", "/nonexistent/spool", "--to", "127.0.0.1:1"])
                .unwrap_err()
                .code,
            1
        );
    }

    #[test]
    fn ship_to_dead_collector_exits_nonzero_but_keeps_the_spool() {
        let (parent, spool) = write_spool("cli-ship-dead", true);
        // Learn a free port, then close it so connections are refused.
        let free = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = free.local_addr().unwrap().to_string();
        drop(free);
        let err = run(&[
            "ship",
            spool.to_str().unwrap(),
            "--to",
            &addr,
            "--retries",
            "2",
            "--base-ms",
            "1",
            "--cap-ms",
            "2",
        ])
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("retry budget exhausted"),
            "{}",
            err.message
        );
        // Degradation left the local session fully usable.
        let out = run(&["spool", "recover", spool.to_str().unwrap()]).unwrap();
        assert!(out.contains("clean shutdown"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn doctor_flags_manifest_disk_disagreement() {
        let (parent, spool) = write_spool("cli-manifest", true);
        // Plant a sealed segment the manifest never listed.
        let seg = spool.join("seg-000000.seg");
        std::fs::copy(&seg, spool.join("seg-000099.seg")).unwrap();
        let out = run(&["doctor", spool.to_str().unwrap()]).unwrap();
        assert!(out.contains(": degraded"), "{out}");
        assert!(out.contains("not in the manifest"), "{out}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn serve_usage_errors() {
        assert_eq!(run(&["serve"]).unwrap_err().code, 2); // no directory
        assert_eq!(
            run(&["serve", "somedir", "--once-ready"]).unwrap_err().code,
            2
        ); // --once-ready without --port-file
        assert_eq!(
            run(&["serve", "/nonexistent/collected", "--once", "1"])
                .unwrap_err()
                .code,
            1
        ); // missing directory is a runtime error
    }

    #[test]
    fn serve_answers_v1_api_through_the_cli() {
        let (parent, spool) = write_spool("cli-serve", true);
        let port_file = parent.join("serve.addr");

        // Exactly five requests, then the daemon exits on its own.
        let serve_args: Vec<String> = [
            "serve",
            spool.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--once",
            "5",
            "--once-ready",
            "--port-file",
            port_file.to_str().unwrap(),
            "--jobs",
            "2",
            "--no-cache",
            "--rescan-ms",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            main_with_args(&serve_args, &mut buf).map(|()| String::from_utf8(buf).unwrap())
        });

        // The port file appearing means the catalog scan already ran.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().to_string();
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve never published its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let mut client = tempest_collect::HttpClient::connect(&addr).unwrap();
        let (status, _, body) = client.get("/api/v1/health", &[]).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        let (status, _, body) = client.get("/api/v1/sessions", &[]).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"id\":\"spool\""), "{body}");
        let (status, headers, body) = client
            .get("/api/v1/sessions/spool/hotspots?top=3&sort=temp", &[])
            .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"spots\""), "{body}");
        let etag = headers
            .iter()
            .find(|(n, _)| n == "etag")
            .map(|(_, v)| v.clone())
            .expect("hotspots answer must carry an ETag");
        let (status, _, _) = client
            .get(
                "/api/v1/sessions/spool/hotspots?top=3&sort=temp",
                &[("If-None-Match", &etag)],
            )
            .unwrap();
        assert_eq!(status, 304, "matching ETag must revalidate");
        let (status, _, body) = client.get("/api/v1/sessions/spool/profile", &[]).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"functions\""), "{body}");

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("serving 1 session(s)"), "{served}");
        assert!(served.contains("served 5 request(s)"), "{served}");
        std::fs::remove_dir_all(&parent).ok();
    }

    #[test]
    fn summary_recover_tolerates_missing_nodes() {
        let (dir, good, _cut) = good_and_truncated("partial");
        let out = run(&[
            "summary",
            good.to_str().unwrap(),
            "/nonexistent/gone.trace",
            "--recover",
        ])
        .unwrap();
        assert!(out.contains("skipping node"), "{out}");
        assert!(out.contains("cluster of 1 node"), "{out}");
        assert!(out.contains("survivors only"), "{out}");
        assert!(out.contains("hot spots"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
