//! The `tempest` command-line entry point. All logic lives in
//! [`tempest_tools::cli`] so it can be tested in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = tempest_tools::main_with_args(&args, &mut stdout) {
        eprintln!("tempest: {}", e.message);
        std::process::exit(e.code);
    }
}
