#![warn(missing_docs)]
//! # tempest-tools
//!
//! Library backing the `tempest` command-line tool — the user-facing
//! incarnation of the paper's Figure-1 workflow ("run their code, and
//! invoke the Tempest parser for post processing"). Each subcommand is a
//! function here so it can be unit-tested without spawning processes.

pub mod cli;

pub use cli::{main_with_args, CliError};
