//! A real radix-2 complex FFT — the native stand-in for NPB FT's compute.
//!
//! Iterative Cooley–Tukey with bit-reversal permutation. The kernel runs
//! `iterations` rounds of evolve → forward FFT → inverse FFT and returns a
//! round-trip checksum, mirroring FT's evolve/fft loop; the unit tests
//! verify the transform against a direct DFT and the inverse against the
//! identity.

use super::NativeKernel;
use tempest_probe::profiler::ThreadProfiler;

/// A complex number. Kept local and `#[repr(C)]`-simple; pulling in a
/// complex-arithmetic crate would be heavier than the 20 lines used here.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }

    fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// In-place iterative FFT. `inverse` selects the conjugate transform and
/// applies the 1/n scale.
pub fn fft_in_place(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data {
            x.re *= scale;
            x.im *= scale;
        }
    }
}

/// FT-style native kernel: evolve/FFT/IFFT rounds over a complex signal.
#[derive(Debug, Clone)]
pub struct FftKernel {
    /// log2 of the transform length.
    pub log2n: u32,
    /// evolve→fft→ifft rounds.
    pub iterations: u32,
}

impl FftKernel {
    /// Scale the default workload.
    pub fn scaled(scale: f64) -> Self {
        let log2n = if scale >= 0.5 { 16 } else { 14 };
        FftKernel {
            log2n,
            iterations: ((30.0 * scale) as u32).max(4),
        }
    }

    fn initial_signal(&self) -> Vec<C64> {
        let n = 1usize << self.log2n;
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                C64::new(
                    (2.0 * std::f64::consts::PI * 3.0 * x).sin(),
                    (2.0 * std::f64::consts::PI * 5.0 * x).cos() * 0.5,
                )
            })
            .collect()
    }
}

impl NativeKernel for FftKernel {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let mut data = self.initial_signal();
        let mut checksum = 0.0;
        for it in 0..self.iterations {
            {
                super::maybe_scope!(tp, "evolve");
                let decay = (-(it as f64) * 1e-3).exp();
                for x in &mut data {
                    x.re *= decay;
                    x.im *= decay;
                }
            }
            {
                super::maybe_scope!(tp, "fft_forward");
                fft_in_place(&mut data, false);
            }
            {
                super::maybe_scope!(tp, "fft_inverse");
                fft_in_place(&mut data, true);
            }
            {
                super::maybe_scope!(tp, "checksum");
                checksum += data[it as usize % data.len()].abs();
            }
        }
        std::hint::black_box(checksum)
    }

    fn instrumented_calls(&self) -> u64 {
        self.iterations as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_dft(x: &[C64]) -> Vec<C64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = C64::default();
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(v.mul(C64::new(ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_direct_dft() {
        let signal: Vec<C64> = (0..16)
            .map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expect = direct_dft(&signal);
        let mut got = signal.clone();
        fft_in_place(&mut got, false);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let signal: Vec<C64> = (0..256)
            .map(|i| C64::new((i as f64 * 0.11).sin(), (i as f64 * 0.37).cos()))
            .collect();
        let mut data = signal.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&signal) {
            assert!(a.sub(*b).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 64;
        let signal: Vec<C64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                C64::new((2.0 * std::f64::consts::PI * 7.0 * x).cos(), 0.0)
            })
            .collect();
        let mut data = signal;
        fft_in_place(&mut data, false);
        // Energy at bins 7 and n−7.
        assert!(data[7].abs() > 30.0);
        assert!(data[57].abs() > 30.0);
        for (i, v) in data.iter().enumerate() {
            if i != 7 && i != 57 {
                assert!(v.abs() < 1e-6, "leakage at bin {i}: {}", v.abs());
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![C64::default(); 12];
        fft_in_place(&mut d, false);
    }

    #[test]
    fn kernel_checksum_is_stable() {
        let k = FftKernel {
            log2n: 8,
            iterations: 3,
        };
        assert_eq!(k.run(None), k.run(None));
        assert!(k.run(None).is_finite());
    }
}
