//! Real compute kernels for native profiling.
//!
//! The simulated cluster covers the paper's parallel experiments; these
//! kernels cover the *native* ones — Tempest's overhead measurement
//! (§3.4), native micro-benchmark profiling (Figure 2), and the gprof
//! comparison. Each kernel does genuine numerical work (checked by its
//! tests), takes an optional [`ThreadProfiler`], and instruments its
//! internal functions only when one is supplied, so the same binary runs
//! instrumented and uninstrumented for overhead A/B runs.

pub mod adi;
pub mod burn;
pub mod cg;
pub mod fft;
pub mod mm;
pub mod stream;

use tempest_probe::profiler::ThreadProfiler;

/// A kernel the overhead harness can run with or without instrumentation.
pub trait NativeKernel {
    /// Short name for reports (e.g. `"fft"`).
    fn name(&self) -> &'static str;

    /// Execute the kernel. `tp = Some(_)` instruments internal functions;
    /// `None` runs bare. Returns a checksum so the optimiser cannot remove
    /// the work (callers should `black_box` it anyway).
    fn run(&self, tp: Option<&ThreadProfiler>) -> f64;

    /// Approximate number of instrumented scope entries per run — used by
    /// the overhead analysis to report cost per event.
    fn instrumented_calls(&self) -> u64;
}

/// Enter a scope only when a profiler is present. The `Option<ScopeGuard>`
/// binding keeps drop (exit) semantics identical to the always-on path.
macro_rules! maybe_scope {
    ($tp:expr, $name:expr) => {
        let _guard = $tp.map(|t| t.scope($name));
    };
}
pub(crate) use maybe_scope;

/// The standard kernel set used by the §3.4 overhead experiment (SPEC/NAS
/// stand-ins: FP-dense, FFT, block solver, sparse CG).
pub fn standard_kernels(scale: f64) -> Vec<Box<dyn NativeKernel>> {
    vec![
        Box::new(burn::Burn::scaled(scale)),
        Box::new(fft::FftKernel::scaled(scale)),
        Box::new(adi::AdiKernel::scaled(scale)),
        Box::new(cg::CgKernel::scaled(scale)),
        Box::new(mm::MatMulKernel::scaled(scale)),
        Box::new(stream::StreamKernel::scaled(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempest_probe::{MonotonicClock, Profiler, VecSink};

    #[test]
    fn all_kernels_run_bare_and_instrumented_to_same_checksum() {
        let sink = VecSink::new();
        let profiler = Profiler::new(Arc::new(MonotonicClock::new()), sink.clone());
        let tp = profiler.thread_profiler();
        for k in standard_kernels(0.05) {
            let bare = k.run(None);
            let inst = k.run(Some(&tp));
            assert!(
                (bare - inst).abs() < 1e-9 * bare.abs().max(1.0),
                "{}: checksum changed under instrumentation ({bare} vs {inst})",
                k.name()
            );
        }
        tp.flush();
        assert!(!sink.is_empty(), "instrumented runs must emit events");
    }

    #[test]
    fn instrumented_call_counts_match_emitted_events() {
        let sink = VecSink::new();
        let profiler = Profiler::new(Arc::new(MonotonicClock::new()), sink.clone());
        let tp = profiler.thread_profiler();
        for k in standard_kernels(0.05) {
            sink.drain();
            k.run(Some(&tp));
            tp.flush();
            let events = sink.drain().len() as u64;
            assert_eq!(
                events,
                2 * k.instrumented_calls(),
                "{}: events {} vs 2×{} declared calls",
                k.name(),
                events,
                k.instrumented_calls()
            );
        }
    }
}
