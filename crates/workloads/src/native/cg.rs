//! A real conjugate-gradient solver — the native stand-in for NPB CG.
//!
//! Solves the 2-D five-point Laplacian (a symmetric positive-definite
//! sparse system) by CG, with the inner operations instrumented under the
//! names the NPB source uses. Tests verify convergence against the true
//! solution of a manufactured problem.

use super::NativeKernel;
use tempest_probe::profiler::ThreadProfiler;

/// The 2-D five-point Laplacian operator on a `k×k` interior grid:
/// `y = A·x` with `A = 4I − shifts` (Dirichlet boundaries).
pub fn laplacian_apply(k: usize, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), k * k);
    assert_eq!(y.len(), k * k);
    for r in 0..k {
        for c in 0..k {
            let i = r * k + c;
            let mut v = 4.0 * x[i];
            if r > 0 {
                v -= x[i - k];
            }
            if r + 1 < k {
                v -= x[i + k];
            }
            if c > 0 {
                v -= x[i - 1];
            }
            if c + 1 < k {
                v -= x[i + 1];
            }
            y[i] = v;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// CG iteration result.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Final iterate.
    pub solution: Vec<f64>,
    /// Iterations actually taken.
    pub iterations: usize,
    /// ‖b − A·x‖₂ at exit.
    pub residual_norm: f64,
}

/// Solve `A·x = b` (A = k×k Laplacian) by CG to `tol`, instrumenting the
/// kernel functions when a profiler is given.
pub fn conj_grad(
    k: usize,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    tp: Option<&ThreadProfiler>,
) -> CgResult {
    super::maybe_scope!(tp, "conj_grad");
    let n = k * k;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let mut iterations = 0;
    while rr.sqrt() > tol && iterations < max_iter {
        {
            super::maybe_scope!(tp, "sparse_matvec");
            laplacian_apply(k, &p, &mut ap);
        }
        let alpha = {
            super::maybe_scope!(tp, "dot_product");
            rr / dot(&p, &ap)
        };
        {
            super::maybe_scope!(tp, "daxpy");
            axpy(alpha, &p, &mut x);
            axpy(-alpha, &ap, &mut r);
        }
        let rr_new = {
            super::maybe_scope!(tp, "dot_product");
            dot(&r, &r)
        };
        let beta = rr_new / rr;
        {
            super::maybe_scope!(tp, "daxpy");
            for (pi, ri) in p.iter_mut().zip(&r) {
                *pi = ri + beta * *pi;
            }
        }
        rr = rr_new;
        iterations += 1;
    }
    CgResult {
        solution: x,
        iterations,
        residual_norm: rr.sqrt(),
    }
}

/// NPB-CG-style native kernel: repeated CG solves on the Laplacian.
#[derive(Debug, Clone)]
pub struct CgKernel {
    /// Grid side (n = k²).
    pub k: usize,
    /// CG iterations per solve (fixed count, NPB style).
    pub inner_iters: usize,
    /// Outer solves per run.
    pub outer: usize,
}

impl CgKernel {
    /// Scale the default workload.
    pub fn scaled(scale: f64) -> Self {
        CgKernel {
            k: 128,
            inner_iters: 25,
            outer: ((60.0 * scale) as usize).max(4),
        }
    }
}

impl NativeKernel for CgKernel {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let n = self.k * self.k;
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.013).sin()).collect();
        let mut checksum = 0.0;
        for _ in 0..self.outer {
            let res = conj_grad(self.k, &b, 0.0, self.inner_iters, tp);
            checksum += res.solution[n / 2];
        }
        std::hint::black_box(checksum)
    }

    fn instrumented_calls(&self) -> u64 {
        // Per solve: conj_grad + iters×(matvec + 2×dot + 2×daxpy).
        self.outer as u64 * (1 + self.inner_iters as u64 * 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_of_constant_interior() {
        // For x ≡ 1, interior rows give 4−4 = 0; edges keep boundary terms.
        let k = 5;
        let x = vec![1.0; k * k];
        let mut y = vec![0.0; k * k];
        laplacian_apply(k, &x, &mut y);
        assert_eq!(y[2 * k + 2], 0.0); // centre
        assert_eq!(y[0], 2.0); // corner keeps two boundary terms
    }

    #[test]
    fn cg_converges_to_manufactured_solution() {
        let k = 20;
        let n = k * k;
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1).cos()).collect();
        let mut b = vec![0.0; n];
        laplacian_apply(k, &x_true, &mut b);
        let res = conj_grad(k, &b, 1e-10, 2_000, None);
        assert!(res.residual_norm < 1e-9, "residual {}", res.residual_norm);
        for (got, want) in res.solution.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_monotone_in_iteration_budget() {
        let k = 16;
        let b: Vec<f64> = (0..k * k).map(|i| (i as f64 * 0.07).sin()).collect();
        let r5 = conj_grad(k, &b, 0.0, 5, None).residual_norm;
        let r50 = conj_grad(k, &b, 0.0, 50, None).residual_norm;
        assert!(r50 < r5, "{r50} !< {r5}");
    }

    #[test]
    fn kernel_deterministic() {
        let k = CgKernel {
            k: 24,
            inner_iters: 10,
            outer: 2,
        };
        assert_eq!(k.run(None), k.run(None));
    }
}
