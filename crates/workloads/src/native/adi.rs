//! A real 5×5 block-tridiagonal solver — the native stand-in for NPB BT.
//!
//! NPB BT's ADI sweeps solve block-tridiagonal systems with 5×5 blocks
//! (the five conserved variables) along each grid dimension, built from
//! the helpers the paper's Table 3 lists: `matvec_sub`, `matmul_sub`, and
//! the block eliminators `binvcrhs`/`binvrhs`. This module implements the
//! same block Thomas algorithm over real data; tests verify the solve
//! against a manufactured solution.

use super::NativeKernel;
use tempest_probe::profiler::ThreadProfiler;

/// A 5×5 block, row-major.
pub type Block = [[f64; 5]; 5];
/// A 5-vector.
pub type Vec5 = [f64; 5];

/// `rhs -= a·b` — NAS BT's `matvec_sub` (matrix–vector multiply-subtract).
pub fn matvec_sub(a: &Block, b: &Vec5, rhs: &mut Vec5) {
    for (i, row) in a.iter().enumerate() {
        let mut acc = 0.0;
        for (j, &v) in row.iter().enumerate() {
            acc += v * b[j];
        }
        rhs[i] -= acc;
    }
}

/// `c -= a·b` — NAS BT's `matmul_sub` (matrix–matrix multiply-subtract).
pub fn matmul_sub(a: &Block, b: &Block, c: &mut Block) {
    for i in 0..5 {
        for j in 0..5 {
            let mut acc = 0.0;
            for (k, row) in b.iter().enumerate() {
                acc += a[i][k] * row[j];
            }
            c[i][j] -= acc;
        }
    }
}

/// Invert `lhs` in place by Gauss–Jordan with partial pivoting, applying
/// the same operations to `c` (a coupled block) and `r` (the right-hand
/// side) — NAS BT's `binvcrhs`.
pub fn binvcrhs(lhs: &mut Block, c: &mut Block, r: &mut Vec5) {
    for col in 0..5 {
        // Pivot.
        let mut p = col;
        for row in col + 1..5 {
            if lhs[row][col].abs() > lhs[p][col].abs() {
                p = row;
            }
        }
        if p != col {
            lhs.swap(p, col);
            c.swap(p, col);
            r.swap(p, col);
        }
        let pivot = lhs[col][col];
        assert!(pivot.abs() > 1e-300, "singular block");
        let inv = 1.0 / pivot;
        for j in 0..5 {
            lhs[col][j] *= inv;
            c[col][j] *= inv;
        }
        r[col] *= inv;
        for row in 0..5 {
            if row != col {
                let f = lhs[row][col];
                for j in 0..5 {
                    lhs[row][j] -= f * lhs[col][j];
                    c[row][j] -= f * c[col][j];
                }
                r[row] -= f * r[col];
            }
        }
    }
}

/// Like [`binvcrhs`] but for the last cell (no coupled block) — `binvrhs`.
pub fn binvrhs(lhs: &mut Block, r: &mut Vec5) {
    let mut dummy = [[0.0; 5]; 5];
    binvcrhs(lhs, &mut dummy, r);
}

/// A block-tridiagonal system `L[i]·x[i-1] + D[i]·x[i] + U[i]·x[i+1] = b[i]`.
#[derive(Debug, Clone)]
pub struct BlockTriSystem {
    /// Sub-diagonal blocks `L[i]` (L\[0\] unused).
    pub lower: Vec<Block>,
    /// Diagonal blocks `D[i]`.
    pub diag: Vec<Block>,
    /// Super-diagonal blocks `U[i]` (last unused).
    pub upper: Vec<Block>,
    /// Right-hand sides, replaced by the solution in place.
    pub rhs: Vec<Vec5>,
}

impl BlockTriSystem {
    /// A diagonally dominant test system of `n` cells seeded
    /// deterministically from `seed`.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64 - 0.5
        };
        let mut blk = |dominant: bool| -> Block {
            let mut b = [[0.0; 5]; 5];
            for (i, row) in b.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = next() * 0.3;
                    if dominant && i == j {
                        *v += 6.0;
                    }
                }
            }
            b
        };
        let lower: Vec<Block> = (0..n).map(|_| blk(false)).collect();
        let diag: Vec<Block> = (0..n).map(|_| blk(true)).collect();
        let upper: Vec<Block> = (0..n).map(|_| blk(false)).collect();
        let rhs: Vec<Vec5> = (0..n)
            .map(|_| {
                let mut v = [0.0; 5];
                for x in &mut v {
                    *x = next();
                }
                v
            })
            .collect();
        BlockTriSystem {
            lower,
            diag,
            upper,
            rhs,
        }
    }

    /// `y[i] = L[i]·x[i-1] + D[i]·x[i] + U[i]·x[i+1]` for residual checks.
    pub fn apply(&self, x: &[Vec5]) -> Vec<Vec5> {
        let n = x.len();
        (0..n)
            .map(|i| {
                let mut y = [0.0; 5];
                let mut add = |m: &Block, v: &Vec5| {
                    for (r, row) in m.iter().enumerate() {
                        for (c, &a) in row.iter().enumerate() {
                            y[r] += a * v[c];
                        }
                    }
                };
                if i > 0 {
                    add(&self.lower[i], &x[i - 1]);
                }
                add(&self.diag[i], &x[i]);
                if i + 1 < n {
                    add(&self.upper[i], &x[i + 1]);
                }
                y
            })
            .collect()
    }

    /// Solve in place by the block Thomas algorithm (the structure of BT's
    /// `x_solve`); returns the solution.
    ///
    /// `block_granularity` selects where the probes go: `false`
    /// instruments at function level (`x_solve`/`back_substitute`, the
    /// paper's configuration, where the <7 % overhead bound holds);
    /// `true` additionally instruments every per-cell helper call
    /// (`matvec_sub`/`matmul_sub`/`binvcrhs`) — the §3.3 "functions with
    /// very short life spans" regime, used by the limitations experiment.
    pub fn solve(&mut self, tp: Option<&ThreadProfiler>, block_granularity: bool) -> Vec<Vec5> {
        let n = self.diag.len();
        let blk = if block_granularity { tp } else { None };
        // Forward elimination.
        {
            super::maybe_scope!(tp, "x_solve");
            // First cell: D0 ← I, U0 ← D0⁻¹U0, b0 ← D0⁻¹b0.
            binvcrhs(&mut self.diag[0], &mut self.upper[0], &mut self.rhs[0]);
            for i in 1..n {
                {
                    super::maybe_scope!(blk, "matvec_sub");
                    let (prev_rhs, cur_rhs) = {
                        let (a, b) = self.rhs.split_at_mut(i);
                        (&a[i - 1], &mut b[0])
                    };
                    matvec_sub(&self.lower[i], prev_rhs, cur_rhs);
                }
                {
                    super::maybe_scope!(blk, "matmul_sub");
                    let (prev_up, cur_diag) = {
                        let prev = self.upper[i - 1];
                        (prev, &mut self.diag[i])
                    };
                    matmul_sub(&self.lower[i], &prev_up, cur_diag);
                }
                {
                    super::maybe_scope!(blk, "binvcrhs");
                    if i + 1 < n {
                        binvcrhs(&mut self.diag[i], &mut self.upper[i], &mut self.rhs[i]);
                    } else {
                        binvrhs(&mut self.diag[i], &mut self.rhs[i]);
                    }
                }
            }
        }
        // Back substitution.
        {
            super::maybe_scope!(tp, "back_substitute");
            for i in (0..n - 1).rev() {
                let next = self.rhs[i + 1];
                matvec_sub(&self.upper[i], &next, &mut self.rhs[i]);
            }
        }
        self.rhs.clone()
    }
}

/// BT-style native kernel: build and solve block-tridiagonal systems.
#[derive(Debug, Clone)]
pub struct AdiKernel {
    /// Cells per system.
    pub n: usize,
    /// Systems per run (the "sweeps").
    pub sweeps: usize,
    /// Instrument every per-cell helper call (§3.3's short-lived-function
    /// regime). Off by default: the paper's <7 % bound is for
    /// function-level granularity.
    pub block_granularity: bool,
}

impl AdiKernel {
    /// Scale the default workload (function-level instrumentation).
    pub fn scaled(scale: f64) -> Self {
        AdiKernel {
            n: 512,
            sweeps: ((600.0 * scale) as usize).max(8),
            block_granularity: false,
        }
    }
}

impl NativeKernel for AdiKernel {
    fn name(&self) -> &'static str {
        "adi"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let mut checksum = 0.0;
        for s in 0..self.sweeps {
            super::maybe_scope!(tp, "adi_");
            let mut sys = BlockTriSystem::synthetic(self.n, s as u64 + 1);
            let x = sys.solve(tp, self.block_granularity);
            checksum += x[self.n / 2][2];
        }
        std::hint::black_box(checksum)
    }

    fn instrumented_calls(&self) -> u64 {
        // Per sweep: adi_ + x_solve + back_substitute, plus (n−1)×3
        // helpers at block granularity.
        let per_sweep = if self.block_granularity {
            3 + 3 * (self.n as u64 - 1)
        } else {
            3
        };
        self.sweeps as u64 * per_sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_sub_subtracts_product() {
        let mut a = [[0.0; 5]; 5];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 2.0;
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut rhs = [10.0; 5];
        matvec_sub(&a, &b, &mut rhs);
        assert_eq!(rhs, [8.0, 6.0, 4.0, 2.0, 0.0]);
    }

    #[test]
    fn matmul_sub_subtracts_product() {
        let mut ident = [[0.0; 5]; 5];
        for (i, row) in ident.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let b = BlockTriSystem::synthetic(1, 7).diag[0];
        let mut c = b;
        matmul_sub(&ident, &b, &mut c);
        for row in &c {
            for &v in row {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn binvcrhs_solves_block() {
        let sys = BlockTriSystem::synthetic(1, 3);
        let a0 = sys.diag[0];
        let mut lhs = a0;
        let mut c = [[0.0; 5]; 5];
        let x_true = [1.0, -2.0, 0.5, 3.0, -1.5];
        let mut r = [0.0; 5];
        for (i, row) in a0.iter().enumerate() {
            r[i] = row.iter().zip(&x_true).map(|(a, b)| a * b).sum();
        }
        binvcrhs(&mut lhs, &mut c, &mut r);
        for (got, want) in r.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn block_thomas_solves_manufactured_system() {
        let n = 40;
        let clean = BlockTriSystem::synthetic(n, 11);
        // Manufacture b = A·x_true.
        let x_true: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut v = [0.0; 5];
                for (j, x) in v.iter_mut().enumerate() {
                    *x = ((i * 5 + j) as f64 * 0.37).sin();
                }
                v
            })
            .collect();
        let b = clean.apply(&x_true);
        let mut sys = clean.clone();
        sys.rhs = b;
        let x = sys.solve(None, false);
        for (got, want) in x.iter().zip(&x_true) {
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-8, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn kernel_is_deterministic() {
        let k = AdiKernel {
            n: 32,
            sweeps: 2,
            block_granularity: true,
        };
        assert_eq!(k.run(None), k.run(None));
        assert!(k.run(None).is_finite());
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_block_detected() {
        let mut lhs = [[0.0; 5]; 5]; // all-zero: singular
        let mut c = [[0.0; 5]; 5];
        let mut r = [1.0; 5];
        binvcrhs(&mut lhs, &mut c, &mut r);
    }
}
