//! STREAM-style memory bandwidth kernel.
//!
//! The memory-bound pole of the overhead suite (and the native
//! counterpart of the `ActivityMix::MemoryBound` power class): the four
//! classic STREAM operations — copy, scale, add, triad — over arrays
//! sized past cache. Validated against the closed-form expected values
//! the STREAM benchmark itself checks.

use super::NativeKernel;
use tempest_probe::profiler::ThreadProfiler;

/// One STREAM pass: returns (a, b, c) after `reps` rounds of the four
/// operations with the canonical update pattern.
pub fn stream_rounds(n: usize, reps: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let scalar = 3.0;
    for _ in 0..reps {
        // copy: c = a
        c.copy_from_slice(&a);
        // scale: b = scalar * c
        for (bi, ci) in b.iter_mut().zip(&c) {
            *bi = scalar * ci;
        }
        // add: c = a + b
        for ((ci, ai), bi) in c.iter_mut().zip(&a).zip(&b) {
            *ci = ai + bi;
        }
        // triad: a = b + scalar * c
        for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
            *ai = bi + scalar * ci;
        }
    }
    (a, b, c)
}

/// Closed-form expected values after `reps` rounds (as STREAM validates).
pub fn stream_expected(reps: usize) -> (f64, f64, f64) {
    let scalar = 3.0;
    let mut a = 1.0f64;
    let mut b = 2.0f64;
    let mut c = 0.0f64;
    for _ in 0..reps {
        c = a;
        b = scalar * c;
        c = a + b;
        a = b + scalar * c;
    }
    (a, b, c)
}

/// The instrumented kernel.
#[derive(Debug, Clone)]
pub struct StreamKernel {
    /// Array length (8 MB per array at 1M doubles — past L2 of the era).
    pub n: usize,
    /// Rounds of the four STREAM operations.
    pub reps: usize,
}

impl StreamKernel {
    /// Scale the default workload.
    pub fn scaled(scale: f64) -> Self {
        StreamKernel {
            n: 1 << 20,
            reps: ((36.0 * scale) as usize).max(4),
        }
    }
}

impl NativeKernel for StreamKernel {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let scalar = 3.0;
        let mut a = vec![1.0f64; self.n];
        let mut b = vec![2.0f64; self.n];
        let mut c = vec![0.0f64; self.n];
        for _ in 0..self.reps {
            {
                super::maybe_scope!(tp, "stream_copy");
                c.copy_from_slice(&a);
            }
            {
                super::maybe_scope!(tp, "stream_scale");
                for (bi, ci) in b.iter_mut().zip(&c) {
                    *bi = scalar * ci;
                }
            }
            {
                super::maybe_scope!(tp, "stream_add");
                for ((ci, ai), bi) in c.iter_mut().zip(&a).zip(&b) {
                    *ci = ai + bi;
                }
            }
            {
                super::maybe_scope!(tp, "stream_triad");
                for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
                    *ai = bi + scalar * ci;
                }
            }
        }
        std::hint::black_box(a[self.n / 2] + b[self.n / 3] + c[self.n / 5])
    }

    fn instrumented_calls(&self) -> u64 {
        4 * self.reps as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let (a, b, c) = stream_rounds(1024, 5);
        let (ea, eb, ec) = stream_expected(5);
        // Every element follows the scalar recurrence.
        for i in [0, 100, 1023] {
            assert!((a[i] - ea).abs() < 1e-9 * ea.abs());
            assert!((b[i] - eb).abs() < 1e-9 * eb.abs());
            assert!((c[i] - ec).abs() < 1e-9 * ec.abs());
        }
    }

    #[test]
    fn zero_reps_leaves_initial_values() {
        let (a, b, c) = stream_rounds(64, 0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kernel_checksum_matches_recurrence() {
        let k = StreamKernel { n: 4096, reps: 3 };
        let got = k.run(None);
        let (ea, eb, ec) = stream_expected(3);
        assert!((got - (ea + eb + ec)).abs() < 1e-6 * got.abs());
        assert_eq!(k.run(None), got);
    }
}
