//! Blocked dense matrix multiply — a SPEC-CPU-class FP kernel.
//!
//! §3.4 measured overhead on "the SPEC CPU 2000 benchmarks and the NAS
//! Parallel Benchmark suite"; a cache-blocked DGEMM is the canonical
//! FP-dense member of that population. The kernel is validated against a
//! naive reference multiply.

use super::NativeKernel;
use tempest_probe::profiler::ThreadProfiler;

/// `c += a·b` for n×n row-major matrices, cache-blocked.
pub fn dgemm_blocked(n: usize, block: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    let bs = block.max(4).min(n);
    for ii in (0..n).step_by(bs) {
        for kk in (0..n).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                for i in ii..(ii + bs).min(n) {
                    for k in kk..(kk + bs).min(n) {
                        let aik = a[i * n + k];
                        let brow = &b[k * n + jj..k * n + (jj + bs).min(n)];
                        let crow = &mut c[i * n + jj..i * n + (jj + bs).min(n)];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Naive reference multiply for validation.
pub fn dgemm_naive(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
}

/// The kernel: repeated blocked multiplies with instrumented phases.
#[derive(Debug, Clone)]
pub struct MatMulKernel {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Cache-block edge length.
    pub block: usize,
    /// Multiplies per run.
    pub reps: usize,
}

impl MatMulKernel {
    /// Scale the default workload.
    pub fn scaled(scale: f64) -> Self {
        MatMulKernel {
            n: 256,
            block: 32,
            reps: ((24.0 * scale) as usize).max(2),
        }
    }

    fn inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let a: Vec<f64> = (0..n * n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i as f64) * 0.11).cos()).collect();
        (a, b)
    }
}

impl NativeKernel for MatMulKernel {
    fn name(&self) -> &'static str {
        "dgemm"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let (a, b) = {
            super::maybe_scope!(tp, "init_matrices");
            self.inputs()
        };
        let mut checksum = 0.0;
        let mut c = vec![0.0; self.n * self.n];
        for _ in 0..self.reps {
            {
                super::maybe_scope!(tp, "clear_c");
                c.iter_mut().for_each(|v| *v = 0.0);
            }
            {
                super::maybe_scope!(tp, "dgemm_blocked");
                dgemm_blocked(self.n, self.block, &a, &b, &mut c);
            }
            {
                super::maybe_scope!(tp, "trace_checksum");
                checksum += c[self.n + 1];
            }
        }
        std::hint::black_box(checksum)
    }

    fn instrumented_calls(&self) -> u64 {
        1 + 3 * self.reps as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_matches_naive() {
        let n = 24;
        let a: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut c1 = vec![0.0; n * n];
        let mut c2 = vec![0.0; n * n];
        dgemm_blocked(n, 8, &a, &b, &mut c1);
        dgemm_naive(n, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn block_size_does_not_change_result() {
        let n = 32;
        let a: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut c8 = vec![0.0; n * n];
        let mut c16 = vec![0.0; n * n];
        dgemm_blocked(n, 8, &a, &b, &mut c8);
        dgemm_blocked(n, 16, &a, &b, &mut c16);
        for (x, y) in c8.iter().zip(&c16) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 16;
        let mut ident = vec![0.0; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n * n];
        dgemm_blocked(n, 8, &ident, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn kernel_deterministic() {
        let k = MatMulKernel {
            n: 48,
            block: 16,
            reps: 2,
        };
        assert_eq!(k.run(None), k.run(None));
    }
}
