//! CPU burn — the paper's Figure-2 heater.
//!
//! Micro-benchmark D's `foo1` "calls a CPU burn code that heats up the CPU
//! rapidly". This is that code: a dependent fused-multiply-add chain that
//! keeps the FP pipeline saturated. Also usable as a wall-clock burner
//! ([`burn_for`]) for experiments that need "hot for N seconds".

use super::NativeKernel;
use std::time::{Duration, Instant};
use tempest_probe::profiler::ThreadProfiler;

/// Fixed-work FP burn kernel.
#[derive(Debug, Clone)]
pub struct Burn {
    /// Number of FMA-chain steps.
    pub steps: u64,
    /// How many instrumented chunks the work is split into.
    pub chunks: u64,
}

impl Burn {
    /// Scale the default workload (scale 1.0 ≈ a few hundred ms on a
    /// modern core).
    pub fn scaled(scale: f64) -> Self {
        Burn {
            steps: ((80_000_000.0 * scale) as u64).max(1_000),
            chunks: 8,
        }
    }
}

/// The inner chain; `#[inline(never)]` keeps the work an honest function
/// call like the compiled Fortran the paper instrumented.
#[inline(never)]
fn fma_chain(steps: u64, seed: f64) -> f64 {
    let mut a = seed;
    let mut b = 1.000000001f64;
    for _ in 0..steps {
        a = a.mul_add(b, 1e-12);
        b = b.mul_add(0.999999999, 1e-13);
    }
    std::hint::black_box(a + b)
}

impl NativeKernel for Burn {
    fn name(&self) -> &'static str {
        "burn"
    }

    fn run(&self, tp: Option<&ThreadProfiler>) -> f64 {
        let mut acc = 0.0;
        let per_chunk = self.steps / self.chunks.max(1);
        for i in 0..self.chunks {
            super::maybe_scope!(tp, "burn_chunk");
            acc += fma_chain(per_chunk, 0.5 + i as f64 * 1e-6);
        }
        acc
    }

    fn instrumented_calls(&self) -> u64 {
        self.chunks
    }
}

/// Burn the CPU until `d` has elapsed; returns the number of chain steps
/// executed (and keeps the result live).
pub fn burn_for(d: Duration) -> u64 {
    let t0 = Instant::now();
    let mut total = 0u64;
    let mut acc = 0.5f64;
    while t0.elapsed() < d {
        acc += fma_chain(200_000, acc);
        total += 200_000;
    }
    std::hint::black_box(acc);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_checksum() {
        let k = Burn {
            steps: 100_000,
            chunks: 4,
        };
        assert_eq!(k.run(None), k.run(None));
    }

    #[test]
    fn work_scales_with_steps() {
        let small = Burn {
            steps: 50_000,
            chunks: 1,
        };
        let large = Burn {
            steps: 5_000_000,
            chunks: 1,
        };
        let t = |k: &Burn| {
            let t0 = Instant::now();
            std::hint::black_box(k.run(None));
            t0.elapsed()
        };
        // Warm up, then compare.
        t(&small);
        assert!(t(&large) > t(&small));
    }

    #[test]
    fn burn_for_respects_duration() {
        let t0 = Instant::now();
        let steps = burn_for(Duration::from_millis(30));
        let took = t0.elapsed();
        assert!(steps > 0);
        assert!(took >= Duration::from_millis(30));
        assert!(took < Duration::from_millis(500), "took {took:?}");
    }

    #[test]
    fn scaled_never_degenerates() {
        assert!(Burn::scaled(0.0).steps >= 1_000);
    }
}
