//! Phase models of the NAS Parallel Benchmarks.
//!
//! Each model reproduces what Tempest *observes* about the real code: the
//! function inventory (names straight from the Fortran sources, as they
//! appear in the paper's Tables 2–3), the phase structure, the instruction
//! mix of each phase (which drives power and therefore heat), and the
//! communication pattern/volume (which drives the compute/communication
//! ratio — e.g. FT's ~50 % all-to-all share, §4.3).
//!
//! Durations are expressed in *model seconds* tuned so class C at NP=4
//! lands in the tens-of-seconds range of the paper's figures; classes
//! scale by [`Class::work_factor`]/[`Class::msg_factor`] and work divides
//! across ranks.

pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;

use crate::classes::Class;
use tempest_cluster::Program;

/// Which benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbBenchmark {
    /// 3-D FFT PDE solver (all-to-all heavy).
    Ft,
    /// Block tridiagonal ADI solver (FP dense).
    Bt,
    /// Conjugate gradient (memory bound, frequent reductions).
    Cg,
    /// Embarrassingly parallel (pure FP).
    Ep,
    /// Multigrid V-cycles.
    Mg,
    /// SSOR with pipelined wavefronts.
    Lu,
    /// Integer bucket sort (no FP).
    Is,
    /// Scalar pentadiagonal ADI solver (BT's memory-bound sibling).
    Sp,
}

impl NpbBenchmark {
    /// All modelled benchmarks.
    pub const ALL: [NpbBenchmark; 8] = [
        NpbBenchmark::Ft,
        NpbBenchmark::Bt,
        NpbBenchmark::Sp,
        NpbBenchmark::Cg,
        NpbBenchmark::Ep,
        NpbBenchmark::Mg,
        NpbBenchmark::Lu,
        NpbBenchmark::Is,
    ];

    /// Conventional lowercase name (`ft`, `bt`, …).
    pub fn name(self) -> &'static str {
        match self {
            NpbBenchmark::Ft => "ft",
            NpbBenchmark::Bt => "bt",
            NpbBenchmark::Cg => "cg",
            NpbBenchmark::Ep => "ep",
            NpbBenchmark::Mg => "mg",
            NpbBenchmark::Lu => "lu",
            NpbBenchmark::Is => "is",
            NpbBenchmark::Sp => "sp",
        }
    }

    /// Build rank `rank`'s program for an `np`-rank class-`class` run.
    pub fn program(self, class: Class, np: usize, rank: usize) -> Program {
        match self {
            NpbBenchmark::Ft => ft::program(class, np, rank),
            NpbBenchmark::Bt => bt::program(class, np, rank),
            NpbBenchmark::Cg => cg::program(class, np, rank),
            NpbBenchmark::Ep => ep::program(class, np, rank),
            NpbBenchmark::Mg => mg::program(class, np, rank),
            NpbBenchmark::Lu => lu::program(class, np, rank),
            NpbBenchmark::Is => is::program(class, np, rank),
            NpbBenchmark::Sp => sp::program(class, np, rank),
        }
    }

    /// Programs for all ranks.
    pub fn programs(self, class: Class, np: usize) -> Vec<Program> {
        (0..np).map(|r| self.program(class, np, r)).collect()
    }
}

/// Per-rank compute seconds for a phase whose class-A single-rank cost is
/// `base_a_secs`: scaled up by class, divided across ranks.
pub(crate) fn scaled_compute(base_a_secs: f64, class: Class, np: usize) -> f64 {
    base_a_secs * class.work_factor() / np as f64
}

/// Message bytes for a phase whose class-A volume is `base_a_bytes`,
/// divided by `np_power` rank factors (collectives split differently per
/// algorithm).
pub(crate) fn scaled_bytes(base_a_bytes: f64, class: Class, np: usize, np_power: i32) -> u64 {
    (base_a_bytes * class.msg_factor() / (np as f64).powi(np_power)).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig};

    #[test]
    fn all_programs_build_balanced_for_every_class() {
        for bench in NpbBenchmark::ALL {
            for class in [Class::S, Class::A, Class::C] {
                for np in [1, 2, 4] {
                    // LU's pipeline needs np ≥ 2 to exercise send/recv but
                    // must still build for np = 1.
                    let progs = bench.programs(class, np);
                    assert_eq!(progs.len(), np);
                    for (r, p) in progs.iter().enumerate() {
                        assert!(
                            p.scopes_balanced(),
                            "{} class {class} np {np} rank {r}: unbalanced scopes",
                            bench.name()
                        );
                        assert!(!p.ops.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn class_scaling_increases_runtime() {
        // Run FT at class S and W; W must take longer.
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let t = |class: Class| {
            let run = ClusterRun::execute(&cfg, &NpbBenchmark::Ft.programs(class, 4));
            run.engine.end_ns
        };
        assert!(t(Class::W) > t(Class::S));
    }

    #[test]
    fn every_benchmark_executes_on_the_simulator() {
        // Smoke-test the full engine+thermal path at class S.
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        for bench in NpbBenchmark::ALL {
            let run = ClusterRun::execute(&cfg, &bench.programs(Class::S, 4));
            assert!(run.engine.end_ns > 0, "{} made no progress", bench.name());
            assert_eq!(run.traces.len(), 4);
            for t in &run.traces {
                assert!(!t.events.is_empty(), "{}: no events", bench.name());
            }
        }
    }

    #[test]
    fn scaling_helpers() {
        assert!(scaled_compute(1.0, Class::C, 4) > scaled_compute(1.0, Class::A, 4));
        assert!(scaled_compute(1.0, Class::A, 4) < scaled_compute(1.0, Class::A, 1));
        assert!(scaled_bytes(1e6, Class::C, 4, 2) >= 1);
        assert_eq!(scaled_bytes(0.0, Class::S, 4, 1), 1, "floor at 1 byte");
    }
}
