//! CG — conjugate gradient with an irregular sparse matrix.
//!
//! Real NPB CG: `niter` outer iterations, each calling `conj_grad` (25
//! inner CG steps of sparse mat-vec, dots and AXPYs). The sparse mat-vec
//! is memory-bound (random access into the matrix), which is why CG runs
//! cooler per unit time than BT's dense block arithmetic; reductions are
//! small but frequent all-reduces.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::Program;
use tempest_sensors::power::ActivityMix;

fn niter(class: Class) -> usize {
    match class {
        Class::S => 3,
        Class::W => 5,
        _ => 15,
    }
}

/// Build rank `rank`'s CG program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let _ = rank;
    let matvec_s = scaled_compute(0.045, class, np);
    let dots_s = scaled_compute(0.004, class, np);
    let axpy_s = scaled_compute(0.008, class, np);
    let reduce_bytes = scaled_bytes(8.0, class, np, 0).max(8);
    let exchange_bytes = scaled_bytes(1.2e6, class, np, 1);

    Program::builder()
        .call("MAIN__", |b| {
            let b = b.call("makea_", |b| {
                b.compute(scaled_compute(0.15, class, np), ActivityMix::MemoryBound)
            });
            b.repeat(niter(class), |b| {
                b.call("conj_grad_", |b| {
                    b.repeat(5, |b| {
                        // One modelled block of inner CG steps.
                        b.call("sparse_matvec", |b| {
                            b.compute(matvec_s, ActivityMix::MemoryBound)
                                .alltoall(exchange_bytes)
                        })
                        .call("dot_product", |b| {
                            b.compute(dots_s, ActivityMix::Balanced)
                                .allreduce(reduce_bytes)
                        })
                        .call("daxpy", |b| b.compute(axpy_s, ActivityMix::Balanced))
                    })
                })
                .allreduce(8) // residual norm
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::Op;

    #[test]
    fn memory_bound_dominates_compute_mix() {
        let p = program(Class::A, 4, 0);
        let (mut mem_ns, mut other_ns) = (0u64, 0u64);
        for op in &p.ops {
            if let Op::Compute {
                duration_ns, mix, ..
            } = op
            {
                if *mix == ActivityMix::MemoryBound {
                    mem_ns += duration_ns;
                } else {
                    other_ns += duration_ns;
                }
            }
        }
        assert!(
            mem_ns > other_ns,
            "CG should be memory-bound: {mem_ns} vs {other_ns}"
        );
    }

    #[test]
    fn frequent_small_reductions() {
        let p = program(Class::A, 4, 0);
        let reduces = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::AllReduce { .. }))
            .count();
        assert!(reduces >= niter(Class::A) * 5, "got {reduces}");
    }
}
