//! BT — block tridiagonal ADI solver.
//!
//! Real NPB BT structure: `initialize` and `exact_rhs` set up the grid,
//! then `niter` iterations of `adi_`, which runs `compute_rhs` and the
//! three sweep solvers `x_solve`/`y_solve`/`z_solve` (each built on the
//! 5×5 block helpers `matvec_sub`, `matmul_sub`, `binvcrhs`) and `add`.
//! Sweeps exchange faces with neighbour ranks.
//!
//! Figure 4 of the paper: *"The BT benchmark performs several tasks
//! followed by a synchronization event that occurs at about 1.5 seconds
//! into the run for our class C experiments … At the synchronization
//! event, all nodes see a dramatic rise in temperature indicative of
//! increased computation."* The model reproduces that: a memory-bound
//! initialisation of ≈1.5 s (class C, NP=4), a barrier, then hot FP-dense
//! ADI iterations. Table 3's function inventory (`adi_`, `matvec_sub`,
//! `matmul_sub`) appears with the same ordering of inclusive times.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::{Program, ProgramBuilder};
use tempest_sensors::power::ActivityMix;

fn niter(class: Class) -> usize {
    match class {
        Class::S => 3,
        Class::W => 5,
        _ => 12,
    }
}

/// Build rank `rank`'s BT program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    // Initialisation: memory-bound (touching the whole grid), sized to hit
    // the ~1.5 s synchronisation point at class C NP=4.
    let init_s = scaled_compute(0.3, class, np);
    let exact_rhs_s = scaled_compute(0.075, class, np);
    // Per-iteration sweep costs (FP-dense 5×5 block arithmetic).
    let rhs_s = scaled_compute(0.055, class, np);
    let blk_matvec_s = scaled_compute(0.035, class, np);
    let blk_matmul_s = scaled_compute(0.033, class, np);
    let solve_extra_s = scaled_compute(0.04, class, np);
    let add_s = scaled_compute(0.012, class, np);
    let face_bytes = scaled_bytes(2.5e6, class, np, 1);

    let left = rank.checked_sub(1);
    let right = if rank + 1 < np { Some(rank + 1) } else { None };

    let sweep = move |b: ProgramBuilder, name: &str| {
        b.call(name, move |b| {
            // Face exchange with neighbours (ring along the sweep axis).
            let mut b = b;
            if let Some(l) = left {
                b = b.send(l, face_bytes).recv(l);
            }
            if let Some(r) = right {
                b = b.send(r, face_bytes).recv(r);
            }
            b.call("matvec_sub", |b| {
                b.compute(blk_matvec_s, ActivityMix::FpDense)
            })
            .call("matmul_sub", |b| {
                b.compute(blk_matmul_s, ActivityMix::FpDense)
            })
            .call("binvcrhs", |b| {
                b.compute(solve_extra_s, ActivityMix::FpDense)
            })
        })
    };

    let b = Program::builder().call("MAIN__", move |b| {
        let b = b
            // Setup phases are light (grid initialisation, exact-solution
            // evaluation): clearly cooler than the post-barrier ADI burn —
            // the contrast that makes Figure 4's synchronised rise visible.
            .call("initialize_", |b| {
                b.compute(init_s, ActivityMix::Custom(0.08))
            })
            .call("exact_rhs_", |b| {
                b.compute(exact_rhs_s, ActivityMix::Custom(0.35))
            })
            // The synchronisation event of Figure 4.
            .barrier();
        let b = b.repeat(niter(class), move |b| {
            b.call("adi_", move |b| {
                let b = b.call("compute_rhs_", |b| b.compute(rhs_s, ActivityMix::FpDense));
                let b = sweep(b, "x_solve_");
                let b = sweep(b, "y_solve_");
                let b = sweep(b, "z_solve_");
                b.call("add_", |b| b.compute(add_s, ActivityMix::FpDense))
            })
        });
        b.call("verify_", |b| {
            b.compute_ms(5.0, ActivityMix::Balanced).allreduce(40)
        })
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig, Op};

    #[test]
    fn sync_event_lands_near_1_5s_for_class_c_np4() {
        // The barrier is preceded only by initialise/exact_rhs: their
        // summed class-C NP=4 model cost is (0.3 + 0.075)·16/4 = 1.5 s.
        let p = program(Class::C, 4, 0);
        let mut before_barrier_ns = 0u64;
        for op in &p.ops {
            match op {
                Op::Barrier => break,
                Op::Compute { duration_ns, .. } => before_barrier_ns += duration_ns,
                _ => {}
            }
        }
        let secs = before_barrier_ns as f64 / 1e9;
        assert!(
            (1.2..=1.8).contains(&secs),
            "sync event at {secs:.2}s, paper says ≈1.5 s"
        );
    }

    #[test]
    fn table3_function_ordering() {
        // Table 3: adi_ (6.32 s) > matvec_sub (4.08 s) > matmul_sub
        // (3.80 s) by inclusive time. Check the model preserves the
        // ordering structurally: per iteration, adi_ includes everything;
        // matvec_sub total > matmul_sub total.
        let p = program(Class::C, 4, 0);
        let sum = |name: &str| {
            let mut total = 0u64;
            let mut depth_in = 0usize;
            for op in &p.ops {
                match op {
                    Op::CallEnter(n) if (n == name || depth_in > 0) => {
                        depth_in += 1;
                    }
                    Op::CallExit => depth_in = depth_in.saturating_sub(1),
                    Op::Compute { duration_ns, .. } if depth_in > 0 => total += duration_ns,
                    _ => {}
                }
            }
            total
        };
        let adi = sum("adi_");
        let matvec = sum("matvec_sub");
        let matmul = sum("matmul_sub");
        assert!(adi > matvec, "adi {adi} !> matvec {matvec}");
        assert!(matvec > matmul, "matvec {matvec} !> matmul {matmul}");
    }

    #[test]
    fn all_nodes_warm_after_sync() {
        // Class C: the configuration of Figure 4 (a class-W run is under a
        // second — too short for any thermal mass to move).
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let progs: Vec<Program> = (0..4).map(|r| program(Class::C, 4, r)).collect();
        let run = ClusterRun::execute(&cfg, &progs);
        // Every node's CPU0 die sensor (index 3) should end warmer than it
        // started: the ADI phase is hot on all nodes.
        for (n, replay) in run.replays.iter().enumerate() {
            let die: Vec<f64> = replay
                .samples
                .iter()
                .filter(|s| s.sensor.0 == 3)
                .map(|s| s.temperature.celsius())
                .collect();
            assert!(
                die.last().unwrap() > &(die[0] + 1.0),
                "node {n} never warmed: {:.1} → {:.1}",
                die[0],
                die.last().unwrap()
            );
        }
    }

    #[test]
    fn neighbour_exchange_present_for_multirank() {
        let p = program(Class::S, 4, 1);
        let sends = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Send { .. }))
            .count();
        let recvs = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Recv { .. }))
            .count();
        assert!(sends > 0 && recvs > 0);
        assert_eq!(sends, recvs);
        // Rank 0 talks only to rank 1.
        let p0 = program(Class::S, 2, 0);
        assert!(p0
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Send { to: 2.., .. })));
    }

    #[test]
    fn single_rank_has_no_communication_but_runs() {
        let p = program(Class::S, 1, 0);
        assert!(p
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Send { .. } | Op::Recv { .. })));
        assert!(p.scopes_balanced());
    }
}
