//! MG — multigrid V-cycle Poisson solver.
//!
//! Real NPB MG: V-cycles over a grid hierarchy — smoothing (`psinv`),
//! residual (`resid`), restriction (`rprj3`) and prolongation (`interp`),
//! with boundary exchanges (`comm3`) at every level and a final norm
//! all-reduce. Work per level shrinks 8× as the grid coarsens, so the
//! thermal profile shows a sawtooth of hot fine-grid phases and
//! comm-dominated coarse phases.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::{Program, ProgramBuilder};
use tempest_sensors::power::ActivityMix;

fn ncycles(class: Class) -> usize {
    match class {
        Class::S => 2,
        Class::W => 4,
        _ => 10,
    }
}

const LEVELS: usize = 4;

/// Build rank `rank`'s MG program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let _ = rank;
    let fine_smooth_s = scaled_compute(0.09, class, np);
    let fine_resid_s = scaled_compute(0.07, class, np);
    let fine_bytes = scaled_bytes(1.6e6, class, np, 1);

    let level = move |b: ProgramBuilder, lvl: usize, down: bool| {
        let shrink = 8f64.powi(lvl as i32);
        let smooth = fine_smooth_s / shrink;
        let resid = fine_resid_s / shrink;
        let bytes = ((fine_bytes as f64 / shrink) as u64).max(64);
        let name = if down { "rprj3_" } else { "interp_" };
        b.call("comm3_", move |b| b.alltoall(bytes))
            .call("psinv_", move |b| b.compute(smooth, ActivityMix::FpDense))
            .call("resid_", move |b| {
                b.compute(resid, ActivityMix::MemoryBound)
            })
            .call(name, move |b| {
                b.compute(resid * 0.4, ActivityMix::MemoryBound)
            })
    };

    Program::builder()
        .call("MAIN__", move |b| {
            let b = b.call("setup_", |b| {
                b.compute(scaled_compute(0.05, class, np), ActivityMix::MemoryBound)
            });
            b.repeat(ncycles(class), move |b| {
                b.call("mg3P_", move |b| {
                    // Down the hierarchy…
                    let mut b = b;
                    for lvl in 0..LEVELS {
                        b = level(b, lvl, true);
                    }
                    // …and back up.
                    for lvl in (0..LEVELS).rev() {
                        b = level(b, lvl, false);
                    }
                    b
                })
                .call("norm2u3_", |b| {
                    b.compute_ms(1.0, ActivityMix::Balanced).allreduce(16)
                })
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::Op;

    #[test]
    fn vcycle_structure_has_both_directions() {
        let p = program(Class::S, 4, 0);
        let rprj = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::CallEnter(n) if n == "rprj3_"))
            .count();
        let interp = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::CallEnter(n) if n == "interp_"))
            .count();
        assert_eq!(rprj, interp);
        assert_eq!(rprj, LEVELS * ncycles(Class::S));
    }

    #[test]
    fn coarse_levels_do_less_work() {
        let p = program(Class::A, 4, 0);
        // Collect psinv compute durations in order; within a half-cycle
        // they shrink 8× per level.
        let durs: Vec<u64> = p
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute {
                    duration_ns, mix, ..
                } if *mix == ActivityMix::FpDense => Some(*duration_ns),
                _ => None,
            })
            .collect();
        assert!(durs[0] > durs[1] && durs[1] > durs[2]);
        assert_eq!(durs[0] / durs[1], 8);
    }
}
