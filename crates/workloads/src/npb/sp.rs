//! SP — scalar pentadiagonal ADI solver.
//!
//! BT's sibling in the NPB suite: the same ADI structure (`adi` running
//! `compute_rhs`, `x_solve`/`y_solve`/`z_solve`, `add`) but with *scalar*
//! pentadiagonal systems instead of 5×5 blocks — less arithmetic per grid
//! point, more memory traffic, and roughly twice the iterations. The
//! thermal consequence (visible in the survey experiment): SP runs cooler
//! than BT per second despite the near-identical call tree, a clean
//! instance of the paper's "type of computation" observation.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::{Program, ProgramBuilder};
use tempest_sensors::power::ActivityMix;

fn niter(class: Class) -> usize {
    match class {
        Class::S => 5,
        Class::W => 8,
        _ => 20, // SP runs ~400 real iterations; scaled like BT's 12↔200
    }
}

/// Build rank `rank`'s SP program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let init_s = scaled_compute(0.2, class, np);
    let rhs_s = scaled_compute(0.04, class, np);
    // Scalar sweeps: memory-heavy forward/backward substitutions.
    let sweep_s = scaled_compute(0.045, class, np);
    let txinvr_s = scaled_compute(0.012, class, np);
    let add_s = scaled_compute(0.008, class, np);
    let face_bytes = scaled_bytes(1.8e6, class, np, 1);

    let left = rank.checked_sub(1);
    let right = if rank + 1 < np { Some(rank + 1) } else { None };

    let sweep = move |b: ProgramBuilder, name: &str| {
        b.call(name, move |b| {
            let mut b = b;
            if let Some(l) = left {
                b = b.send(l, face_bytes).recv(l);
            }
            if let Some(r) = right {
                b = b.send(r, face_bytes).recv(r);
            }
            // Thomas-style scalar elimination: streaming, not FP-dense.
            b.compute(sweep_s, ActivityMix::MemoryBound)
        })
    };

    Program::builder()
        .call("MAIN__", move |b| {
            let b = b
                .call("initialize_", |b| {
                    b.compute(init_s, ActivityMix::Custom(0.1))
                })
                .barrier();
            b.repeat(niter(class), move |b| {
                b.call("adi_", move |b| {
                    let b = b
                        .call("compute_rhs_", |b| b.compute(rhs_s, ActivityMix::Balanced))
                        .call("txinvr_", |b| b.compute(txinvr_s, ActivityMix::Balanced));
                    let b = sweep(b, "x_solve_");
                    let b = sweep(b, "y_solve_");
                    let b = sweep(b, "z_solve_");
                    b.call("add_", |b| b.compute(add_s, ActivityMix::Balanced))
                })
            })
            .call("verify_", |b| {
                b.compute_ms(4.0, ActivityMix::Balanced).allreduce(40)
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig};

    #[test]
    fn inventory_matches_real_sp() {
        let p = program(Class::S, 4, 0);
        let names: Vec<&str> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                tempest_cluster::Op::CallEnter(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        for expected in [
            "MAIN__", "adi_", "txinvr_", "x_solve_", "z_solve_", "verify_",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(p.scopes_balanced());
    }

    #[test]
    fn sp_runs_cooler_than_bt_per_busy_second() {
        // Same cluster, same window: BT's FP-dense blocks out-heat SP's
        // memory-bound scalar sweeps — "type of computation" (§5).
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        cfg.thermal.hetero_seed = None;
        let window = 3_000_000_000u64..8_000_000_000u64;
        let avg_die = |progs: Vec<Program>| {
            let run = ClusterRun::execute(&cfg, &progs);
            assert!(run.engine.end_ns > window.end);
            let die: Vec<f64> = run.traces[0]
                .samples
                .iter()
                .filter(|s| s.sensor.0 == 3 && window.contains(&s.timestamp_ns))
                .map(|s| s.temperature.celsius())
                .collect();
            die.iter().sum::<f64>() / die.len() as f64
        };
        let sp = avg_die((0..4).map(|r| program(Class::C, 4, r)).collect());
        let bt = avg_die(
            (0..4)
                .map(|r| super::super::bt::program(Class::C, 4, r))
                .collect(),
        );
        assert!(
            sp < bt,
            "SP (scalar/memory) should run cooler than BT (block/FP): {sp:.1} !< {bt:.1}"
        );
    }

    #[test]
    fn pipeline_executes_at_every_class() {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        for class in [Class::S, Class::A] {
            let progs: Vec<Program> = (0..4).map(|r| program(class, 4, r)).collect();
            let run = ClusterRun::execute(&cfg, &progs);
            assert!(run.engine.end_ns > 0);
        }
    }
}
