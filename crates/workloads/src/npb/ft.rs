//! FT — 3-D FFT PDE solver.
//!
//! Real NPB FT structure: `setup` / `compute_indexmap` /
//! `compute_initial_conditions`, then `niter` iterations of `evolve`,
//! `fft` (the `cffts1/2/3` passes), and the distributed transpose
//! (`transpose_x_yz`) implemented as `MPI_Alltoall`, finishing each
//! iteration with a `checksum` all-reduce.
//!
//! §4.3: *"FT (Fourier Transform) … spends 50 % of its time in all-to-all
//! communication"*, with a very regular power profile but — as the paper
//! found — irregular thermals across nodes. The model's per-iteration
//! compute and transpose volume are tuned so the NP=4 class-C
//! communication fraction lands near one half.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::{Program, ProgramBuilder};
use tempest_sensors::power::ActivityMix;

/// Iteration count per class (the real FT uses ~20 for A–C).
fn niter(class: Class) -> usize {
    match class {
        Class::S => 4,
        Class::W => 6,
        _ => 20,
    }
}

/// Build rank `rank`'s FT program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let _ = rank; // SPMD: all ranks run the same program.
                  // Class-A single-rank model costs. FFT passes are FP-dense with heavy
                  // strided memory traffic; evolve is a streaming multiply.
    let evolve_s = scaled_compute(0.06, class, np);
    let fft_pass_s = scaled_compute(0.075, class, np);
    // Transpose volume: each rank exchanges its slab with every other.
    // Tuned so that at class C, NP=4 over gigabit the exchange takes
    // roughly as long as the compute half of the iteration — the paper's
    // "FT spends 50 % of its time in all-to-all communication" (§4.3):
    // 41 MB/pair × 3 pairwise rounds ≈ 1.1 s vs ≈1.1 s of FFT passes.
    let transpose_bytes = scaled_bytes(105e6, class, np, 2);
    let checksum_bytes = 16;

    let b = Program::builder().call("MAIN__", |b| {
        let b = b
            .call("setup_", |b| b.compute_ms(20.0, ActivityMix::Balanced))
            .call("compute_indexmap_", |b| {
                b.compute(scaled_compute(0.02, class, np), ActivityMix::MemoryBound)
            })
            .call("compute_initial_conditions_", |b| {
                b.compute(scaled_compute(0.05, class, np), ActivityMix::MemoryBound)
            })
            // Warm-up FFT outside the timed loop (as in the real code).
            .call("fft_", |b| fft_body(b, fft_pass_s, transpose_bytes));
        b.repeat(niter(class), |b| {
            b.call("evolve_", |b| b.compute(evolve_s, ActivityMix::MemoryBound))
                .call("fft_", |b| fft_body(b, fft_pass_s, transpose_bytes))
                .call("checksum_", |b| {
                    b.compute_ms(2.0, ActivityMix::Balanced)
                        .allreduce(checksum_bytes)
                })
        })
    });
    b.build()
}

/// All ranks' programs (convenience for tests and benches).
pub fn program_all(class: Class, np: usize) -> Vec<Program> {
    (0..np).map(|r| program(class, np, r)).collect()
}

/// One 3-D FFT: two local pass groups around the distributed transpose.
fn fft_body(b: ProgramBuilder, fft_pass_s: f64, transpose_bytes: u64) -> ProgramBuilder {
    b.call("cffts1_", |b| b.compute(fft_pass_s, ActivityMix::FpDense))
        .call("cffts2_", |b| b.compute(fft_pass_s, ActivityMix::FpDense))
        .call("transpose_x_yz_", |b| b.alltoall(transpose_bytes))
        .call("cffts3_", |b| b.compute(fft_pass_s, ActivityMix::FpDense))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig};

    #[test]
    fn comm_fraction_near_one_half_at_class_c() {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let progs: Vec<Program> = (0..4).map(|r| program(Class::C, 4, r)).collect();
        let run = ClusterRun::execute(&cfg, &progs);
        let f = run.engine.comm_fraction(0);
        assert!(
            (0.3..=0.7).contains(&f),
            "FT comm fraction {f:.2}, paper says ≈0.5"
        );
    }

    #[test]
    fn function_inventory_matches_real_ft() {
        let p = program(Class::S, 4, 0);
        let names: Vec<&str> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                tempest_cluster::Op::CallEnter(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        for expected in [
            "MAIN__",
            "setup_",
            "evolve_",
            "cffts1_",
            "transpose_x_yz_",
            "checksum_",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn class_c_run_is_tens_of_seconds() {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let progs: Vec<Program> = (0..4).map(|r| program(Class::C, 4, r)).collect();
        let run = ClusterRun::execute(&cfg, &progs);
        let secs = run.engine.end_ns as f64 / 1e9;
        assert!(
            (10.0..=200.0).contains(&secs),
            "class C NP=4 runtime {secs:.1}s outside the paper's figure range"
        );
    }
}
