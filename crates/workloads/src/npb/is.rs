//! IS — integer bucket sort.
//!
//! Real NPB IS: each iteration ranks its keys into buckets (`rank_keys`,
//! integer/memory work — no floating point at all), sizes the exchange
//! with an all-reduce, redistributes keys with an all-to-all-v, and
//! locally sorts. The integer-only mix makes IS the coolest benchmark of
//! the suite per busy second — a useful endpoint for the
//! "type of computation affects thermals" observation (§5).

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::Program;
use tempest_sensors::power::ActivityMix;

fn niter(class: Class) -> usize {
    match class {
        Class::S => 3,
        Class::W => 5,
        _ => 10,
    }
}

/// Build rank `rank`'s IS program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let _ = rank;
    let rank_keys_s = scaled_compute(0.08, class, np);
    let local_sort_s = scaled_compute(0.05, class, np);
    let key_bytes = scaled_bytes(4e6, class, np, 2);

    Program::builder()
        .call("MAIN__", |b| {
            let b = b.call("create_seq_", |b| {
                b.compute(scaled_compute(0.06, class, np), ActivityMix::MemoryBound)
            });
            b.repeat(niter(class), |b| {
                b.call("rank_", |b| {
                    b.call("bucket_count", |b| {
                        // Integer tallying: memory-bound, low FP power.
                        b.compute(rank_keys_s, ActivityMix::MemoryBound)
                    })
                    .allreduce(scaled_bytes(4096.0, class, np, 0))
                    .alltoall(key_bytes)
                    .call("local_sort", |b| {
                        b.compute(local_sort_s, ActivityMix::MemoryBound)
                    })
                })
            })
            .call("full_verify_", |b| {
                b.compute(scaled_compute(0.03, class, np), ActivityMix::MemoryBound)
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::Op;

    #[test]
    fn no_fp_dense_phases() {
        let p = program(Class::A, 4, 0);
        assert!(
            p.ops.iter().all(|o| !matches!(
                o,
                Op::Compute {
                    mix: ActivityMix::FpDense,
                    ..
                }
            )),
            "IS is integer-only"
        );
    }

    #[test]
    fn each_iteration_exchanges_keys() {
        let p = program(Class::A, 4, 0);
        let a2a = p
            .ops
            .iter()
            .filter(|o| matches!(o, Op::AllToAll { .. }))
            .count();
        assert_eq!(a2a, niter(Class::A));
    }
}
