//! LU — SSOR solver with pipelined wavefront communication.
//!
//! Real NPB LU: `niter` SSOR iterations of `rhs`, the lower-triangular
//! sweep `blts` (preceded by `jacld`) and the upper-triangular sweep
//! `buts` (preceded by `jacu`). The sweeps are *pipelined*: rank `r`
//! receives a k-plane from `r−1`, computes, and forwards to `r+1`
//! (reversed for the upper sweep) — the classic software pipeline whose
//! fill/drain bubbles show up as per-node thermal phase shifts.

use super::{scaled_bytes, scaled_compute};
use crate::classes::Class;
use tempest_cluster::{Program, ProgramBuilder};
use tempest_sensors::power::ActivityMix;

fn niter(class: Class) -> usize {
    match class {
        Class::S => 3,
        Class::W => 5,
        _ => 12,
    }
}

/// Build rank `rank`'s LU program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let jac_s = scaled_compute(0.05, class, np);
    let sweep_s = scaled_compute(0.08, class, np);
    let rhs_s = scaled_compute(0.06, class, np);
    let plane_bytes = scaled_bytes(0.8e6, class, np, 1);

    // Lower sweep: pipeline 0 → np−1. Upper sweep: np−1 → 0.
    let lower = move |b: ProgramBuilder| {
        let mut b = b.call("jacld_", |b| b.compute(jac_s, ActivityMix::FpDense));
        b = b.enter("blts_");
        if rank > 0 {
            b = b.recv(rank - 1);
        }
        b = b.compute(sweep_s, ActivityMix::FpDense);
        if rank + 1 < np {
            b = b.send(rank + 1, plane_bytes);
        }
        b.ret()
    };
    let upper = move |b: ProgramBuilder| {
        let mut b = b.call("jacu_", |b| b.compute(jac_s, ActivityMix::FpDense));
        b = b.enter("buts_");
        if rank + 1 < np {
            b = b.recv(rank + 1);
        }
        b = b.compute(sweep_s, ActivityMix::FpDense);
        if rank > 0 {
            b = b.send(rank - 1, plane_bytes);
        }
        b.ret()
    };

    Program::builder()
        .call("MAIN__", move |b| {
            let b = b.call("setbv_", |b| {
                b.compute(scaled_compute(0.04, class, np), ActivityMix::MemoryBound)
            });
            b.call("ssor_", move |b| {
                b.repeat(niter(class), move |b| {
                    let b = b.call("rhs_", |b| b.compute(rhs_s, ActivityMix::Balanced));
                    let b = lower(b);
                    let b = upper(b);
                    b.allreduce(40) // residual norms
                })
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig, Op};

    #[test]
    fn pipeline_endpoints_have_one_sided_comm() {
        let first = program(Class::S, 4, 0);
        let last = program(Class::S, 4, 3);
        // Rank 0's blts never receives; rank 3's blts never sends.
        let receives_from = |p: &Program, from: usize| {
            p.ops
                .iter()
                .any(|o| matches!(o, Op::Recv { from: f } if *f == from))
        };
        assert!(!receives_from(&first, usize::MAX - 1)); // no panic path
        assert!(receives_from(&last, 2));
        assert!(receives_from(&first, 1)); // upper sweep comes back down
    }

    #[test]
    fn pipeline_executes_without_deadlock() {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let progs: Vec<Program> = (0..4).map(|r| program(Class::S, 4, r)).collect();
        let run = ClusterRun::execute(&cfg, &progs);
        assert!(run.engine.end_ns > 0);
        // Pipeline fill: rank 3 waits for 0,1,2 in the lower sweep, so its
        // blocked time exceeds rank 0's.
        assert!(run.engine.comm_blocked_ns[3] > 0);
    }

    #[test]
    fn single_rank_pipeline_degenerates_cleanly() {
        let p = program(Class::S, 1, 0);
        assert!(p.scopes_balanced());
        assert!(p
            .ops
            .iter()
            .all(|o| !matches!(o, Op::Send { .. } | Op::Recv { .. })));
    }
}
