//! EP — embarrassingly parallel random-number kernel.
//!
//! Real NPB EP: each rank generates its share of Gaussian pairs
//! (`vranlc` + tallying), with exactly one small all-reduce at the end.
//! Almost pure FP compute — the hottest and most uniform profile of the
//! suite; a useful thermal contrast to FT's comm-bound behaviour.

use super::scaled_compute;
use crate::classes::Class;
use tempest_cluster::Program;
use tempest_sensors::power::ActivityMix;

/// Build rank `rank`'s EP program.
pub fn program(class: Class, np: usize, rank: usize) -> Program {
    let _ = rank;
    let gen_s = scaled_compute(2.4, class, np);

    Program::builder()
        .call("MAIN__", |b| {
            b.repeat(8, |b| {
                // Blocked generation keeps entry/exit events flowing so
                // the trace shows activity (the real code blocks by 2^16).
                b.call("vranlc_", |b| b.compute(gen_s / 8.0, ActivityMix::FpDense))
            })
            .call("gaussian_tally", |b| {
                b.compute(scaled_compute(0.2, class, np), ActivityMix::Balanced)
            })
            .allreduce(80)
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempest_cluster::{ClusterRun, ClusterRunConfig, Op};

    #[test]
    fn single_reduction_only() {
        let p = program(Class::A, 4, 0);
        let comms = p
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::AllReduce { .. } | Op::AllToAll { .. } | Op::Barrier | Op::Send { .. }
                )
            })
            .count();
        assert_eq!(comms, 1, "EP has exactly one reduction");
    }

    #[test]
    fn comm_fraction_is_negligible() {
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        let progs: Vec<Program> = (0..4).map(|r| program(Class::W, 4, r)).collect();
        let run = ClusterRun::execute(&cfg, &progs);
        assert!(run.engine.comm_fraction(0) < 0.05);
    }

    #[test]
    fn ep_runs_hotter_than_ft_per_second() {
        // EP is pure FP; FT is half comm-wait. Compare die temperature
        // over the same wall window (5–9 s) — both class-C runs are longer
        // than that, so the thermal mass has equal time to charge.
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.thermal.noise_sigma_c = 0.0;
        cfg.thermal.hetero_seed = None;
        let avg_die_window = |progs: Vec<Program>| {
            let run = ClusterRun::execute(&cfg, &progs);
            assert!(run.engine.end_ns > 9_000_000_000, "run shorter than window");
            let die: Vec<f64> = run.replays[0]
                .samples
                .iter()
                .filter(|s| {
                    s.sensor.0 == 3 && (5_000_000_000..9_000_000_000).contains(&s.timestamp_ns)
                })
                .map(|s| s.temperature.celsius())
                .collect();
            die.iter().sum::<f64>() / die.len() as f64
        };
        let ep = avg_die_window((0..4).map(|r| program(Class::C, 4, r)).collect());
        let ft = avg_die_window(super::super::ft::program_all(Class::C, 4));
        assert!(
            ep > ft + 0.5,
            "EP window average {ep:.1} °C should exceed FT {ft:.1} °C"
        );
    }
}
