#![warn(missing_docs)]
//! # tempest-workloads
//!
//! Workloads for the Tempest reproduction, in three families:
//!
//! * [`npb`] — phase-accurate models of the NAS Parallel Benchmarks the
//!   paper profiles (FT and BT in the evaluation; CG, EP, MG, LU and IS
//!   for completeness). Each model produces per-rank
//!   [`tempest_cluster::Program`]s whose function names, phase structure,
//!   communication pattern and compute/communication ratio follow the real
//!   codes — FT spends ~50 % of its time in all-to-all (§4.3), BT hits a
//!   synchronisation event ~1.5 s in (Figure 4), and the function
//!   inventories match Tables 2–3 (`adi_`, `matvec_sub`, `matmul_sub`, …).
//! * [`native`] — *real* compute kernels (an FFT, a BT-style block
//!   tridiagonal solver, a conjugate-gradient solver, a CPU burn) that run
//!   on the host under real instrumentation. These are what the overhead
//!   experiment (§3.4: Tempest <7 %, gprof <10 %) measures.
//! * [`micro`] — the five Table-1 micro-benchmarks (A–E) used to validate
//!   timeline reconstruction under interleaving and recursion, in both
//!   native and simulated form.

pub mod classes;
pub mod micro;
pub mod native;
pub mod npb;

pub use classes::Class;
