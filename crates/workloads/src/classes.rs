//! NAS Parallel Benchmark problem classes.
//!
//! NPB defines classes S (sample), W (workstation), A, B, C in increasing
//! problem size. The paper's cluster results use class C with NP=4. The
//! simulated phase models scale their compute-phase durations and message
//! sizes by class; the factors follow the official NPB size ratios
//! (roughly 4× work per class step for most codes).

/// NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Sample size for quick functional checks.
    S,
    /// Workstation size.
    W,
    /// Small production size.
    A,
    /// Medium production size (≈4× A).
    B,
    /// Large production size (≈16× A) — the paper's configuration.
    C,
}

impl Class {
    /// All classes, smallest first.
    pub const ALL: [Class; 5] = [Class::S, Class::W, Class::A, Class::B, Class::C];

    /// Work multiplier relative to class A (the usual ~4× ladder, with S
    /// and W far smaller — handy for fast tests).
    pub fn work_factor(self) -> f64 {
        match self {
            Class::S => 0.002,
            Class::W => 0.03,
            Class::A => 1.0,
            Class::B => 4.0,
            Class::C => 16.0,
        }
    }

    /// Message-size multiplier relative to class A (communication volume
    /// grows slower than compute for most codes: ~2.5× per step).
    pub fn msg_factor(self) -> f64 {
        match self {
            Class::S => 0.01,
            Class::W => 0.08,
            Class::A => 1.0,
            Class::B => 2.5,
            Class::C => 6.25,
        }
    }

    /// Canonical letter.
    pub fn letter(self) -> char {
        match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_factors_monotone() {
        let f: Vec<f64> = Class::ALL.iter().map(|c| c.work_factor()).collect();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn msg_factors_monotone() {
        let f: Vec<f64> = Class::ALL.iter().map(|c| c.msg_factor()).collect();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn class_c_is_the_paper_configuration() {
        assert_eq!(Class::C.work_factor(), 16.0);
        assert_eq!(Class::C.to_string(), "C");
    }

    #[test]
    fn compute_grows_faster_than_communication() {
        // B→C: work ×4, messages ×2.5 — comm fraction shrinks with class.
        assert!(
            Class::C.work_factor() / Class::B.work_factor()
                > Class::C.msg_factor() / Class::B.msg_factor()
        );
    }
}
