//! The Table-1 micro-benchmarks.
//!
//! §4.2: *"All benchmarks include: A (main alone), B (one function), C
//! (multiple functions), D (multiple functions with interleaving), and E
//! (multiple functions with recursion and interleaving)."* Benchmark D is
//! the paper's worked example (Figure 2): `foo1` runs a CPU burn that
//! dominates execution, `foo2` "simply exits after a short timer expires".
//!
//! Each benchmark exists twice: as a *native* instrumented run (real burn
//! loops and timers on the host, for validating the probe) and as a
//! *simulated* [`Program`] (for driving the cluster pipeline and the
//! Figure-2 thermal profile, where `foo1` must run 60 s — too long to burn
//! a real core in a test suite).

use crate::native::burn::burn_for;
use std::time::Duration;
use tempest_cluster::Program;
use tempest_probe::profiler::ThreadProfiler;
use tempest_sensors::power::ActivityMix;

/// Which micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Micro {
    /// Main alone.
    A,
    /// One function.
    B,
    /// Multiple functions.
    C,
    /// Multiple functions with interleaving (the Figure-2 benchmark).
    D,
    /// Multiple functions with recursion and interleaving.
    E,
}

impl Micro {
    /// All five, in Table-1 order.
    pub const ALL: [Micro; 5] = [Micro::A, Micro::B, Micro::C, Micro::D, Micro::E];

    /// Table-1 description.
    pub fn description(self) -> &'static str {
        match self {
            Micro::A => "main alone",
            Micro::B => "one function",
            Micro::C => "multiple functions",
            Micro::D => "multiple functions with interleaving",
            Micro::E => "multiple functions with recursion and interleaving",
        }
    }
}

/// Durations for the native variants (milliseconds per unit of work).
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Burn length for the dominant function.
    pub burn_ms: u64,
    /// Timer length for the short function (foo2).
    pub timer_ms: u64,
    /// Recursion depth for benchmark E.
    pub depth: u32,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            burn_ms: 40,
            timer_ms: 10,
            depth: 3,
        }
    }
}

/// Run a micro-benchmark natively under instrumentation.
pub fn run_native(micro: Micro, cfg: MicroConfig, tp: &ThreadProfiler) {
    let _main = tp.scope("main");
    match micro {
        Micro::A => {
            burn_for(Duration::from_millis(cfg.burn_ms));
        }
        Micro::B => {
            let _f = tp.scope("foo1");
            burn_for(Duration::from_millis(cfg.burn_ms));
        }
        Micro::C => {
            for name in ["foo1", "foo2", "foo3"] {
                let _f = tp.scope(name);
                burn_for(Duration::from_millis(cfg.burn_ms / 3));
            }
        }
        Micro::D => {
            // Table 1 D: main { foo1 { foo2 } ; foo2 }.
            {
                let _f1 = tp.scope("foo1");
                burn_for(Duration::from_millis(cfg.burn_ms));
                let _f2 = tp.scope("foo2");
                std::thread::sleep(Duration::from_millis(cfg.timer_ms));
            }
            let _f2 = tp.scope("foo2");
            std::thread::sleep(Duration::from_millis(cfg.timer_ms));
        }
        Micro::E => {
            recurse(tp, cfg, cfg.depth);
        }
    }
}

fn recurse(tp: &ThreadProfiler, cfg: MicroConfig, depth: u32) {
    let _f1 = tp.scope("foo1");
    burn_for(Duration::from_millis(cfg.burn_ms / (cfg.depth as u64 + 1)));
    if depth > 0 {
        recurse(tp, cfg, depth - 1);
    }
    let _f2 = tp.scope("foo2");
    std::thread::sleep(Duration::from_millis(
        cfg.timer_ms / (cfg.depth as u64 + 1).max(1),
    ));
}

/// The simulated single-rank program for a micro-benchmark.
///
/// `burn_secs`/`timer_secs` control the dominant burn and the short timer.
/// Figure 2's configuration is `program(Micro::D, 60.0, 1.3)` — foo1 burns
/// the CPU for ~60 s, foo2 waits on a timer.
pub fn program(micro: Micro, burn_secs: f64, timer_secs: f64) -> Program {
    match micro {
        Micro::A => Program::builder()
            .call("main", |b| b.compute(burn_secs, ActivityMix::FpDense))
            .build(),
        Micro::B => Program::builder()
            .call("main", |b| {
                b.call("foo1", |b| b.compute(burn_secs, ActivityMix::FpDense))
            })
            .build(),
        Micro::C => Program::builder()
            .call("main", |b| {
                b.call("foo1", |b| b.compute(burn_secs / 3.0, ActivityMix::FpDense))
                    .call("foo2", |b| {
                        b.compute(burn_secs / 3.0, ActivityMix::MemoryBound)
                    })
                    .call("foo3", |b| {
                        b.compute(burn_secs / 3.0, ActivityMix::Balanced)
                    })
            })
            .build(),
        Micro::D => Program::builder()
            .call("main", |b| {
                b.call("foo1", |b| {
                    b.compute(burn_secs, ActivityMix::FpDense)
                        .call("foo2", |b| b.sleep(timer_secs))
                })
                .call("foo2", |b| b.sleep(timer_secs))
            })
            .build(),
        Micro::E => {
            // Two levels of recursion with interleaved foo2, mirroring the
            // native variant.
            Program::builder()
                .call("main", |b| {
                    b.call("foo1", |b| {
                        b.compute(burn_secs / 2.0, ActivityMix::FpDense)
                            .call("foo1", |b| {
                                b.compute(burn_secs / 2.0, ActivityMix::FpDense)
                                    .call("foo2", |b| b.sleep(timer_secs / 2.0))
                            })
                            .call("foo2", |b| b.sleep(timer_secs / 2.0))
                    })
                })
                .build()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempest_core::AnalysisRequest;
    use tempest_probe::{MonotonicClock, Profiler, VecSink};

    fn run_and_parse(micro: Micro) -> tempest_core::NodeProfile {
        let sink = VecSink::new();
        let profiler = Profiler::new(Arc::new(MonotonicClock::new()), sink.clone());
        let tp = profiler.thread_profiler();
        run_native(micro, MicroConfig::default(), &tp);
        tp.flush();
        let trace = tempest_probe::trace::Trace::from_mixed_events(
            tempest_probe::trace::NodeMeta::anonymous(),
            profiler.registry().snapshot(),
            sink.drain(),
        );
        AnalysisRequest::new().analyze_trace(&trace).unwrap()
    }

    #[test]
    fn a_has_only_main() {
        let p = run_and_parse(Micro::A);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].func.name, "main");
        assert!(p.functions[0].inclusive_ns >= 35_000_000);
    }

    #[test]
    fn b_main_includes_foo1() {
        let p = run_and_parse(Micro::B);
        let main = p.by_name("main").unwrap();
        let foo1 = p.by_name("foo1").unwrap();
        assert!(main.inclusive_ns >= foo1.inclusive_ns);
        assert_eq!(foo1.calls, 1);
    }

    #[test]
    fn c_three_functions_roughly_equal() {
        let p = run_and_parse(Micro::C);
        let times: Vec<u64> = ["foo1", "foo2", "foo3"]
            .iter()
            .map(|n| p.by_name(n).unwrap().inclusive_ns)
            .collect();
        let max = *times.iter().max().unwrap() as f64;
        let min = *times.iter().min().unwrap() as f64;
        assert!(max / min < 3.0, "unbalanced thirds: {times:?}");
    }

    #[test]
    fn d_interleaving_counts_foo2_twice() {
        let p = run_and_parse(Micro::D);
        assert_eq!(p.by_name("foo2").unwrap().calls, 2);
        assert_eq!(p.by_name("foo1").unwrap().calls, 1);
        // foo1 dominates main's time, as in Figure 2. The bound is loose:
        // under CI load the foo2 sleeps can overshoot their 10 ms.
        let main = p.by_name("main").unwrap().inclusive_ns as f64;
        let foo1 = p.by_name("foo1").unwrap().inclusive_ns as f64;
        assert!(foo1 / main > 0.25, "foo1/main = {:.2}", foo1 / main);
    }

    #[test]
    fn e_recursion_reconstructs_cleanly() {
        let p = run_and_parse(Micro::E);
        let foo1 = p.by_name("foo1").unwrap();
        assert_eq!(foo1.calls, MicroConfig::default().depth as u64 + 1);
        // Inclusive time counted once despite nesting: ≤ main's.
        assert!(foo1.inclusive_ns <= p.by_name("main").unwrap().inclusive_ns);
        assert!(p.warnings.is_empty());
    }

    #[test]
    fn simulated_programs_all_balanced() {
        for m in Micro::ALL {
            let p = program(m, 6.0, 0.5);
            assert!(p.scopes_balanced(), "{m:?}");
        }
    }

    #[test]
    fn simulated_d_shape_matches_table1() {
        use tempest_cluster::Op;
        let p = program(Micro::D, 60.0, 1.3);
        let names: Vec<String> = p
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::CallEnter(n) => Some(format!(">{n}")),
                Op::CallExit => Some("<".to_string()),
                Op::Compute { .. } => Some("C".to_string()),
                Op::Sleep { .. } => Some("S".to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(
            names,
            vec![">main", ">foo1", "C", ">foo2", "S", "<", "<", ">foo2", "S", "<", "<"]
        );
    }

    #[test]
    fn descriptions_cover_all() {
        for m in Micro::ALL {
            assert!(!m.description().is_empty());
        }
    }
}
