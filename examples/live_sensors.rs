//! Run the real sensor path: discover hwmon sensors and profile a burn
//! under a live 4 Hz `tempd`.
//!
//! On hosts (or containers) without `/sys/class/hwmon` temperature inputs
//! this falls back to the simulated Opteron sensor bank, so the example is
//! runnable anywhere — the portability behaviour §3.4 claims ("Tempest
//! will run on any Linux-based system that has support for the LM sensors
//! package").
//!
//! Run with: `cargo run --release --example live_sensors`

use std::sync::Arc;
use std::time::Duration;
use tempest_core::{report, AnalysisRequest};
use tempest_probe::tempd::TempdConfig;
use tempest_probe::{profile_fn, MonotonicClock, ProfilingSession};
use tempest_sensors::hwmon::HwmonSource;
use tempest_sensors::node_model::{NodeThermalModel, NodeThermalParams};
use tempest_sensors::platform::PlatformSpec;
use tempest_sensors::sim::SimulatedSensorBank;
use tempest_sensors::source::SensorSource;
use tempest_workloads::native::burn::burn_for;

fn main() {
    let hw = HwmonSource::discover();
    let source: Box<dyn SensorSource> = if hw.is_available() {
        println!("real sensors found ({}):", hw.sensor_count());
        for s in hw.sensors() {
            println!("  {} ({:?})", s.label, s.kind);
        }
        Box::new(hw)
    } else {
        println!("no hwmon sensors here — falling back to the simulated Opteron bank");
        println!("(note: simulated sensors won't react to this host's real load)");
        Box::new(SimulatedSensorBank::new(
            PlatformSpec::opteron_full(),
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            7,
            0.1,
        ))
    };

    // The paper's protocol: tempd launches before main's work begins.
    let session = ProfilingSession::start_with_sensors(
        Arc::new(MonotonicClock::new()),
        source,
        TempdConfig::default(), // 4 Hz
    );
    let tp = session.thread_profiler();
    {
        profile_fn!(&tp, "main");
        {
            profile_fn!(&tp, "warm_up");
            burn_for(Duration::from_millis(900));
        }
        {
            profile_fn!(&tp, "cool_down");
            std::thread::sleep(Duration::from_millis(600));
        }
    }
    drop(tp);

    let (trace, stats) = session.finish_with_stats();
    if let Some(stats) = stats {
        println!(
            "\ntempd: {} rounds, {:.4} % CPU (paper: <1 %)",
            stats.rounds,
            stats.cpu_fraction() * 100.0
        );
    }
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    print!("\n{}", report::render_stdout(&profile));
}
