//! Profile a *shared-memory* parallel program natively.
//!
//! The paper's cluster results use MPI, but its portability table also
//! covers "several x86 32- and 64-bit machines with both shared and
//! distributed memory". This example is the shared-memory case: four
//! worker threads run real FFT work under one profiling session, each
//! with its own `ThreadProfiler`, while a single `tempd` samples. The
//! report then shows per-function totals accumulated across threads
//! (calls = thread count) — and the timeline keeps the threads separate
//! underneath, which is what lets exclusive attribution stay per-thread.
//!
//! Run with: `cargo run --release --example parallel_native`

use std::sync::Arc;
use tempest_core::{report, AnalysisRequest};
use tempest_probe::tempd::TempdConfig;
use tempest_probe::{profile_fn, MonotonicClock, ProfilingSession};
use tempest_sensors::node_model::{NodeThermalModel, NodeThermalParams};
use tempest_sensors::platform::PlatformSpec;
use tempest_sensors::sim::SimulatedSensorBank;
use tempest_workloads::native::fft::FftKernel;
use tempest_workloads::native::NativeKernel;

fn main() {
    let threads = 4;
    println!("profiling an FFT workload across {threads} threads…\n");

    let session = ProfilingSession::start_with_sensors(
        Arc::new(MonotonicClock::new()),
        Box::new(SimulatedSensorBank::new(
            PlatformSpec::opteron_full(),
            NodeThermalModel::new(NodeThermalParams::opteron_node()),
            11,
            0.1,
        )),
        TempdConfig::default(),
    );

    let profiler = Arc::clone(session.profiler());
    let mut handles = Vec::new();
    for worker in 0..threads {
        let profiler = Arc::clone(&profiler);
        handles.push(std::thread::spawn(move || {
            let tp = profiler.thread_profiler();
            profile_fn!(&tp, "worker_main");
            // Each worker runs a real kernel; stagger sizes so threads
            // finish at different times (visible in the timeline).
            let kernel = FftKernel {
                log2n: 14,
                iterations: 6 + worker as u32 * 2,
            };
            std::hint::black_box(kernel.run(Some(&tp)));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let (trace, stats) = session.finish_with_stats();
    if let Some(stats) = stats {
        println!(
            "tempd sampled {} rounds at {:.4} % CPU\n",
            stats.rounds,
            stats.cpu_fraction() * 100.0
        );
    }
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    print!("{}", report::render_stdout(&profile));

    let worker = profile.by_name("worker_main").expect("workers profiled");
    println!(
        "worker_main: {} calls (one per thread), {:.2}s inclusive core-time summed\n\
         across threads over a {:.2}s wall-clock run — the timeline keeps threads\n\
         separate underneath, so exclusive attribution and the call graph stay\n\
         per-thread even though the report aggregates.",
        worker.calls,
        worker.inclusive_secs(),
        profile.span_ns as f64 / 1e9
    );
}
