//! Quickstart: profile a toy program end to end.
//!
//! The workflow the paper's Figure 1 describes, in Rust terms:
//!
//! 1. start a [`ProfilingSession`] (links the "Tempest library" in),
//! 2. instrument functions with [`profile_fn!`] (the
//!    `-finstrument-functions` analogue),
//! 3. finish the session to get a trace,
//! 4. run the parser and print the Figure-2(a) report.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;
use tempest_core::{report, AnalysisRequest};
use tempest_probe::{profile_fn, ProfilingSession};
use tempest_workloads::native::burn::burn_for;

fn foo1(tp: &tempest_probe::profiler::ThreadProfiler) {
    profile_fn!(tp);
    // A CPU burn, like the paper's micro-benchmark D.
    burn_for(Duration::from_millis(400));
    foo2(tp);
}

fn foo2(tp: &tempest_probe::profiler::ThreadProfiler) {
    profile_fn!(tp);
    // "foo2 simply exits after a short timer expires."
    std::thread::sleep(Duration::from_millis(60));
}

fn main() {
    // 1. Start a session. (`start_with_sensors` would also launch tempd
    //    over real hwmon sensors — see the `live_sensors` example.)
    let session = ProfilingSession::start();
    let tp = session.thread_profiler();

    // 2. Run the instrumented program.
    {
        profile_fn!(&tp, "main");
        foo1(&tp);
        foo2(&tp);
    }
    tp.flush();
    drop(tp);

    // 3. Collect the trace…
    let trace = session.finish();
    println!(
        "trace: {} functions, {} events over {:.3} s\n",
        trace.functions.len(),
        trace.events.len(),
        trace.span_ns() as f64 / 1e9
    );

    // 4. …and parse it.
    let profile = AnalysisRequest::new()
        .analyze_trace(&trace)
        .expect("trace parses");
    print!("{}", report::render_stdout(&profile));
    println!("(no thermal rows: this session ran without a sensor source —");
    println!(" see `profile_cluster` for the full thermal pipeline)");
}
