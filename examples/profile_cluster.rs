//! Profile a parallel benchmark on the simulated cluster.
//!
//! Reproduces the paper's main use case: run NAS FT (class B here, for
//! speed; pass `C` as the first argument for the paper's configuration)
//! with NP=4 across four Opteron nodes, collect one trace per node, parse
//! them all, and print per-node thermal summaries plus one node's full
//! functional profile.
//!
//! Run with: `cargo run --release --example profile_cluster [S|W|A|B|C]`

use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::{report, AnalysisRequest, ClusterProfile};
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn main() {
    let class = match std::env::args().nth(1).as_deref() {
        Some("S") => Class::S,
        Some("W") => Class::W,
        Some("A") => Class::A,
        Some("C") => Class::C,
        _ => Class::B,
    };
    println!("running NAS FT class {class}, NP=4, on the simulated 4-node Opteron cluster…");

    let cfg = ClusterRunConfig::paper_default();
    let programs = NpbBenchmark::Ft.programs(class, 4);
    let run = ClusterRun::execute(&cfg, &programs);

    println!(
        "simulated {:.1} s; rank 0 spent {:.0} % blocked in communication\n",
        run.engine.end_ns as f64 / 1e9,
        run.engine.comm_fraction(0) * 100.0
    );

    // Parse every node's trace (the post-processing step of Figure 1).
    let cluster = ClusterProfile::new(
        run.traces
            .iter()
            .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
            .collect(),
    );

    println!("per-node thermal summary (CPU sensors):");
    for s in cluster.node_summaries() {
        println!(
            "  {}  avg {:>6.1} F   max {:>6.1} F",
            s.hostname, s.avg_f, s.max_f
        );
    }
    if let Some((lo, hi)) = cluster.node_divergence_f() {
        println!(
            "  → the same workload differs by {:.1} F across nodes (the paper's §4 observation)\n",
            hi - lo
        );
    }

    println!("full functional profile of node 1:");
    print!("{}", report::render_stdout(&cluster.nodes[0]));
}
