//! Answer the paper's question 4:
//!
//! * "What and where are the performance effects of thermal optimizations
//!   on my application?"
//!
//! Workflow: profile BT, pick the hottest function, apply DVFS to exactly
//! that function, re-profile, and diff the two runs function by function —
//! the before/after analysis that needs a *function-level* thermal
//! profile, not just node temperatures.
//!
//! Run with: `cargo run --release --example thermal_optimization`

use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::analysis::{compare_profiles, hotspots};
use tempest_core::{AnalysisRequest, ClusterProfile};
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn profile(cfg: &ClusterRunConfig, programs: &[tempest_cluster::Program]) -> ClusterProfile {
    let run = ClusterRun::execute(cfg, programs);
    ClusterProfile::new(
        run.traces
            .iter()
            .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
            .collect(),
    )
}

fn main() {
    let cfg = ClusterRunConfig::paper_default();
    let baseline_programs = NpbBenchmark::Bt.programs(Class::B, 4);

    println!("1. baseline profile…");
    let baseline = profile(&cfg, &baseline_programs);
    let target = hotspots(&baseline.nodes[0], 1)
        .first()
        .expect("a hot spot")
        .name
        .clone();
    println!("   hottest function on node 1: `{target}`\n");

    println!("2. applying DVFS (1.8 → 1.0 GHz) to `{target}` only, rerunning…");
    let optimised_programs: Vec<_> = baseline_programs
        .iter()
        .map(|p| p.with_dvfs_on(&target, 1000.0 / 1800.0))
        .collect();
    let optimised = profile(&cfg, &optimised_programs);

    println!("\n3. function-level before → after (node 1):");
    println!(
        "   {:<16} {:>10} {:>10}",
        "function", "Δtime(s)", "Δtemp(F)"
    );
    for d in compare_profiles(&baseline.nodes[0], &optimised.nodes[0]) {
        if d.dtime_secs.abs() > 0.005 || d.dtemp_f.abs() > 0.2 {
            println!(
                "   {:<16} {:>+10.2} {:>+10.2}",
                d.name, d.dtime_secs, d.dtemp_f
            );
        }
    }

    let before = baseline.node_summaries();
    let after = optimised.node_summaries();
    println!("\n4. node-level effect:");
    for (b, a) in before.iter().zip(&after) {
        println!(
            "   {}  max {:>6.1} F → {:>6.1} F  ({:+.1} F)",
            b.hostname,
            b.max_f,
            a.max_f,
            a.max_f - b.max_f
        );
    }
    println!("\n→ the Arrhenius rule of thumb (§1): every 10 °C ≈ 50 % device-reliability");
    println!("  loss, so a few °F shaved off the hot spot is a real MTBF gain — and the");
    println!("  runtime cost is visible in the same table, localised to the slowed function.");
}
