//! Answer the paper's questions 1 and 2:
//!
//! * "What parts of my parallel application will benefit from thermal
//!   management techniques?"
//! * "Where do I start optimizing my parallel application to reduce
//!   thermals?"
//!
//! Runs NAS BT on the simulated cluster and ranks hot spots per node —
//! functions that are both hot *and* where exclusive time is spent, so
//! optimising them would actually remove heat.
//!
//! Run with: `cargo run --release --example hotspot_hunt`

use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::analysis::hotspots;
use tempest_core::{AnalysisRequest, ClusterProfile};
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn main() {
    println!("profiling NAS BT class B, NP=4…\n");
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Bt.programs(Class::B, 4));
    let cluster = ClusterProfile::new(
        run.traces
            .iter()
            .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
            .collect(),
    );

    for node in &cluster.nodes {
        println!(
            "hot spots on {} (score = excess °F × exclusive seconds):",
            node.node.hostname
        );
        for spot in hotspots(node, 3) {
            println!(
                "  {:<16} avg {:>6.1} F  over {:>6.2}s  score {:>8.2}",
                spot.name, spot.avg_f, spot.inclusive_secs, spot.score
            );
        }
        println!();
    }

    // Cluster-wide: which function is the global hot spot?
    println!("cluster-wide view of the usual suspects:");
    for name in [
        "adi_",
        "compute_rhs_",
        "matvec_sub",
        "matmul_sub",
        "binvcrhs",
    ] {
        if let Some(summary) = cluster.function_cluster_summary(name) {
            println!(
                "  {:<14} avg-of-node-averages {:>6.1} F (min {:>6.1}, max {:>6.1})",
                name, summary.avg, summary.min, summary.max
            );
        }
    }
    println!("\n→ start optimising inside `adi_`'s solver helpers: they are the");
    println!("  hottest code the program spends real time in (question 2 answered).");
}
