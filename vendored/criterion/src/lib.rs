//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-definition API (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter*`, `criterion_group!`/`criterion_main!`)
//! so the workspace's benches compile and run without network access, but
//! replaces criterion's statistical machinery with a simple calibrated
//! timing loop that prints mean wall-clock time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple reporting.
    BytesDecimal(u64),
}

/// Batch sizing for `iter_batched*`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input shared by exactly this many iterations.
    NumIterations(u64),
    /// One input per batch of unspecified size.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 1024,
            BatchSize::LargeInput => 64,
            BatchSize::NumIterations(n) => n.max(1),
            BatchSize::PerIteration => 1,
        }
    }
}

/// Benchmark registry / runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Configure how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Apply CLI-style configuration (accepted for API parity; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_bench(&id.into(), self.sample_size, None, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, self.throughput, f);
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration: grow iteration count until one sample takes
    // at least ~2ms, so short routines aren't dominated by timer overhead.
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || b.iters >= 1 << 24 {
            break;
        }
        b.iters *= 8;
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut timed = 0u64;
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
        timed += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / timed.max(1) as f64;
    let rate = match tp {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:.1} MiB/s", n as f64 / 1048576.0 / (mean_ns / 1e9))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 / (mean_ns / 1e9))
        }
        None => String::new(),
    };
    println!(
        "{id}: mean {mean_ns:.1} ns/iter (best sample {:.1} ns/iter){rate}",
        best.as_nanos() as f64 / b.iters.max(1) as f64
    );
}

/// Times a closure over a calibrated number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a per-batch input built by `setup` (by reference).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let per_batch = size.iters_per_batch();
        let mut remaining = self.iters;
        let mut elapsed = Duration::ZERO;
        while remaining > 0 {
            let n = remaining.min(per_batch);
            let mut input = setup();
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine(&mut input));
            }
            elapsed += start.elapsed();
            remaining -= n;
        }
        self.elapsed = elapsed;
    }

    /// Time `routine` with a per-batch input built by `setup` (by value).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iters_per_batch().min(4096);
        let mut remaining = self.iters;
        let mut elapsed = Duration::ZERO;
        while remaining > 0 {
            let n = remaining.min(per_batch);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed += start.elapsed();
            remaining -= n;
        }
        self.elapsed = elapsed;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $(
                $target(&mut c);
            )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(2);
        g.throughput(Throughput::Elements(8));
        g.bench_function("sum", |b| b.iter(|| (0u64..8).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![0u8; 16],
                |v| v.iter().map(|&x| x as u32).sum::<u32>(),
                BatchSize::NumIterations(32),
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
