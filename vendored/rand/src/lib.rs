//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand`'s 0.8 API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen_range`,
//! `gen_bool`, and `gen`. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and of more than adequate quality for
//! the simulator's jitter and noise models. It is NOT the same stream as
//! upstream `StdRng` (ChaCha12), so seeds produce different (but equally
//! deterministic) sequences.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        let r: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        r as f32
    }
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $ty
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform value of `T` (only the types the workspace samples).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let f = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = r.gen_range(3u32..9);
            assert!((3..9).contains(&i));
            let n = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
