//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace; since Rust 1.72 `std::sync::mpsc` is itself backed by the
//! crossbeam queue implementation and its `Sender` is `Sync + Clone`, so a
//! thin re-export is behaviourally equivalent for our purposes.

/// Multi-producer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn sender_is_sync_clone_and_delivers_in_order() {
        fn assert_sync<T: Sync + Clone + Send>() {}
        assert_sync::<channel::Sender<u32>>();
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
