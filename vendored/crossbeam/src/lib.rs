//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, bounded, Sender, SyncSender,
//! Receiver}` is used by this workspace; since Rust 1.72 `std::sync::mpsc`
//! is itself backed by the crossbeam queue implementation and its senders
//! are `Sync + Clone`, so a thin re-export is behaviourally equivalent for
//! our purposes. `bounded` maps to `std::sync::mpsc::sync_channel`, whose
//! `send` blocks when the queue is full and whose `try_send` reports
//! `TrySendError::Full` — exactly the two overflow behaviours the probe's
//! backpressure layer needs.

/// Multi-producer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, SyncSender, TrySendError};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A bounded MPSC channel holding at most `capacity` in-flight
    /// messages. `send` blocks when full; `try_send` fails fast with
    /// [`TrySendError::Full`].
    pub fn bounded<T>(capacity: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn sender_is_sync_clone_and_delivers_in_order() {
        fn assert_sync<T: Sync + Clone + Send>() {}
        assert_sync::<channel::Sender<u32>>();
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_sender_reports_full_and_disconnected() {
        fn assert_sync<T: Sync + Clone + Send>() {}
        assert_sync::<channel::SyncSender<u32>>();
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Disconnected(3))
        ));
    }

    #[test]
    fn bounded_send_unblocks_when_receiver_drains() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1u32).unwrap();
        let t = std::thread::spawn(move || tx.send(2)); // blocks until a slot frees
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap().unwrap();
    }
}
