//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, the
//! [`Strategy`] trait with `prop_map`, range/tuple/vec/bool strategies, and
//! a tiny `[class]{m,n}` regex-string strategy.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index; the
//!   run is fully deterministic (seeded from the test name), so re-running
//!   reproduces it exactly.
//! * **Fewer default cases** (64 instead of 256) to keep offline CI fast.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 stream used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ ((case as u64) << 32 | 0x5DEE_CE66))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $ty
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&str` patterns act as regex-string strategies. Supported subset:
/// literal characters, `[a-z0-9_]`-style classes, and `{m,n}` / `{n}` / `+`
/// / `*` repetition of the final atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n}"),
                    n.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad {n}");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        let count = if lo == hi {
            lo
        } else {
            rng.usize_in(lo, hi + 1)
        };
        for _ in 0..count {
            out.push(alphabet[rng.usize_in(0, alphabet.len())]);
        }
    }
    out
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors of `element` with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.len.start, self.len.end.max(self.len.start + 1));
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Either boolean, uniformly.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[test] fn $name:ident ($($args:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    let outcome = {
                        $crate::__proptest_bind!(__rng; $($args)*);
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $argp:pat_param in $strat:expr) => {
        let $argp = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $argp:pat_param in $strat:expr,) => {
        let $argp = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $argp:pat_param in $strat:expr, $($rest:tt)+) => {
        let $argp = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_subset() {
        let mut rng = crate::TestRng::for_case("pattern", 0);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..9.0, n in 1usize..5, b in prop::bool::ANY) {
            prop_assert!((-3.0..9.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u32..10, prop::bool::ANY), 2..20)
            .prop_map(|pairs| pairs.into_iter().map(|(a, _)| a).collect::<Vec<u32>>())) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&a| a < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_limits_cases(seed in 0u64..1_000) {
            prop_assert!(seed < 1_000);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("t", 1);
        let mut b = crate::TestRng::for_case("t", 1);
        let s = prop::collection::vec(0u64..100, 3..10);
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
