//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of rayon's API it actually uses: `ThreadPoolBuilder` /
//! `ThreadPool::install`, `current_num_threads`, and the parallel-iterator
//! pattern `items.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The execution model is a real work-stealing scheduler, scoped to each
//! parallel call instead of a persistent worker pool: tasks are dealt into
//! per-worker deques in contiguous index blocks, each worker drains its own
//! deque from the front and steals from the back of a victim's deque when
//! idle. Workers are `std::thread::scope` threads, which keeps the
//! implementation free of `unsafe` while still letting tasks borrow from the
//! caller's stack exactly like rayon's scoped jobs do. Results are written
//! back by task index, so output order is deterministic and identical to
//! sequential execution regardless of the interleaving.
//!
//! Restoring upstream rayon is a one-line swap in the workspace manifest.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Pool width installed on the current thread (`None` = default).
    static CURRENT_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the current scope would fan out to.
pub fn current_num_threads() -> usize {
    CURRENT_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(default_width)
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`]. The stand-in cannot actually
/// fail to build; the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count. `0` (the default) means "one per CPU".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in the stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A configured degree of parallelism. Worker threads are spawned scoped
/// per parallel call (see the crate docs), so the pool itself is just the
/// width every `install`ed parallel iterator fans out to.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The number of worker threads this pool fans out to.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Run `op` with this pool as the current one: parallel iterators
    /// inside use this pool's width.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = CURRENT_WIDTH.with(|w| w.replace(Some(self.width)));
        let guard = RestoreWidth(prev);
        let out = op();
        drop(guard);
        out
    }
}

/// Restores the previously installed width even if `op` panics.
struct RestoreWidth(Option<usize>);

impl Drop for RestoreWidth {
    fn drop(&mut self) {
        CURRENT_WIDTH.with(|w| w.set(self.0));
    }
}

/// The traits user code imports wholesale.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Start a parallel pipeline that consumes the collection.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send;
    /// Start a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A materialised parallel iterator (the stand-in is eager: items are
/// collected up front, then dealt to workers).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each element through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Execute the map with the current pool width and collect the results
    /// in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        execute(current_num_threads(), self.items, &self.f)
            .into_iter()
            .collect()
    }
}

/// Work-stealing parallel map: deterministic, index-ordered results.
fn execute<T: Send, R: Send>(width: usize, items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let width = width.min(n).max(1);
    if width == 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal contiguous index blocks into per-worker deques.
    let block = n.div_ceil(width);
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = (0..width)
        .map(|_| Mutex::new(VecDeque::with_capacity(block)))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[(i / block).min(width - 1)]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .push_back((i, item));
    }
    let deques = &deques;

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for w in 0..width {
            scope.spawn(move || {
                loop {
                    // Own deque first (front), then steal from victims (back).
                    let task = pop_front(&deques[w])
                        .or_else(|| (1..width).find_map(|d| pop_back(&deques[(w + d) % width])));
                    let Some((i, item)) = task else { break };
                    let r = f(item);
                    *lock_recover(&slots_ref[i]) = Some(r);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every task index filled")
        })
        .collect()
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn pop_front<T>(deque: &Mutex<VecDeque<T>>) -> Option<T> {
    lock_recover(deque).pop_front()
}

fn pop_back<T>(deque: &Mutex<VecDeque<T>>) -> Option<T> {
    lock_recover(deque).pop_back()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let input: Vec<String> = (0..17).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> = pool.install(|| input.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(out[0], 2);
        assert_eq!(out.len(), 17);
    }

    #[test]
    fn width_one_and_empty_inputs() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<i32> = pool.install(|| Vec::<i32>::new().into_par_iter().map(|x| x).collect());
        assert!(out.is_empty());
        let out: Vec<i32> = pool.install(|| vec![7].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn install_sets_and_restores_width() {
        assert_eq!(current_num_threads(), default_width());
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 5);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5);
        });
        assert_eq!(current_num_threads(), default_width());
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(pool.current_num_threads(), default_width());
    }

    #[test]
    fn work_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let items: Vec<u32> = (0..64).collect();
        let _out: Vec<u32> = pool.install(|| {
            items
                .par_iter()
                .map(|&x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    x
                })
                .collect()
        });
        // All workers that ran are distinct scoped threads; at minimum the
        // map executed somewhere.
        assert!(!seen.lock().unwrap().is_empty());
    }
}
