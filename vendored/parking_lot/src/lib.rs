//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning guard API
//! (`lock()`/`read()`/`write()` return guards directly), implemented over
//! `std::sync`. Poisoned locks are recovered transparently: a panic while
//! holding a lock must not cascade into every later acquisition, which is
//! exactly parking_lot's behaviour.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
