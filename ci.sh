#!/usr/bin/env bash
# Local CI gate: build, test, lint, format-check the whole workspace.
# Run from the repository root before pushing. Lint/format steps are
# skipped (with a warning) when the component is not installed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Kill-9 spool durability torture: spawns and SIGKILLs writer
# subprocesses, so it is opt-in. Seeded and bounded (8 iterations);
# override the seed with TEMPEST_TORTURE_SEED.
if [ "${TEMPEST_TORTURE:-0}" = "1" ]; then
    echo "==> crash torture (TEMPEST_TORTURE=1)"
    TEMPEST_TORTURE=1 cargo test -q -p tempest-bench --test crash_torture
else
    echo "--  crash torture skipped (set TEMPEST_TORTURE=1 to run)"
fi

# Seeded chaos-proxy network collection suite: ships sessions through a
# fault-injecting TCP proxy (resets, truncation, bit flips) and asserts
# exactly-once delivery. Opt-in like the torture suite; override the
# seed with TEMPEST_CHAOS_SEED.
if [ "${TEMPEST_CHAOS:-0}" = "1" ]; then
    echo "==> chaos shipping (TEMPEST_CHAOS=1)"
    TEMPEST_CHAOS=1 cargo test -q -p tempest-bench --test chaos_ship
else
    echo "--  chaos shipping skipped (set TEMPEST_CHAOS=1 to run)"
fi

# Deterministic hostile-input fuzzing: 2000 seeded iterations over the
# trace/spool/ship decoders asserting no panic, no over-budget
# allocation, no hang. TEMPEST_FUZZ=1 runs a much longer soak.
FUZZ_TMP="$(mktemp -d)"
trap 'rm -rf "$FUZZ_TMP"' EXIT
echo "==> fuzz_decode smoke (2000 seeded iterations)"
cargo run --release -q -p tempest-bench --bin fuzz_decode -- \
    --seed 0xTEMPEST --iters 2000 --metrics-out "$FUZZ_TMP/fuzz-metrics.json"
echo "==> fuzz metrics schema check (limit/cancel counters fired)"
cargo run --release -q -p tempest-bench --bin json_check -- limits "$FUZZ_TMP/fuzz-metrics.json"
if [ "${TEMPEST_FUZZ:-0}" = "1" ]; then
    echo "==> fuzz_decode soak (TEMPEST_FUZZ=1, 200000 iterations)"
    cargo run --release -q -p tempest-bench --bin fuzz_decode -- \
        --seed "${TEMPEST_FUZZ_SEED:-0xTEMPEST}" --iters 200000
else
    echo "--  fuzz soak skipped (set TEMPEST_FUZZ=1 to run)"
fi

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run -p tempest-bench

echo "==> perf_smoke (refresh BENCH_parse.json)"
cargo run --release -q -p tempest-bench --bin perf_smoke -- BENCH_parse.json >/dev/null

echo "==> BENCH_parse.json schema check"
cargo run --release -q -p tempest-bench --bin json_check -- bench BENCH_parse.json

echo "==> correlate throughput floor vs committed baseline"
cargo run --release -q -p tempest-bench --bin json_check -- \
    floor BENCH_parse.json BENCH_baseline.json

echo "==> chrome-trace export + schema check"
OBS_TMP="$(mktemp -d)"
# One EXIT trap covers both scratch dirs (a second trap would replace
# the first).
trap 'rm -rf "$OBS_TMP" "$FUZZ_TMP"' EXIT
cargo run --release -q -p tempest-tools --bin tempest -- \
    demo micro-d --out "$OBS_TMP/traces" >/dev/null
cargo run --release -q -p tempest-tools --bin tempest -- \
    export --format chrome-trace "$OBS_TMP/traces/micro-d-node0.trace" \
    --out "$OBS_TMP/trace.json" >/dev/null
cargo run --release -q -p tempest-bench --bin json_check -- chrome "$OBS_TMP/trace.json"

echo "==> network collection smoke (collect serve --once + ship, loopback)"
cargo run --release -q -p tempest-bench --bin spool_demo -- "$OBS_TMP/spool" >/dev/null
# Ephemeral port; the daemon publishes the bound address atomically via
# --port-file, so the shipper never guesses a port or sleeps blindly.
cargo run --release -q -p tempest-tools --bin tempest -- \
    collect serve --out "$OBS_TMP/collected" --addr 127.0.0.1:0 --once 1 \
    --port-file "$OBS_TMP/collector.addr" >/dev/null &
COLLECT_PID=$!
for _ in $(seq 1 100); do
    [ -f "$OBS_TMP/collector.addr" ] && break
    sleep 0.1
done
[ -f "$OBS_TMP/collector.addr" ] || { echo "collector never published its address" >&2; exit 1; }
cargo run --release -q -p tempest-tools --bin tempest -- \
    ship "$OBS_TMP/spool" --to "$(cat "$OBS_TMP/collector.addr")" --session smoke >/dev/null
wait "$COLLECT_PID"
# Byte-identity gate: analyzing the collected copy must render exactly
# the same report as analyzing the source spool locally.
cargo run --release -q -p tempest-tools --bin tempest -- \
    spool recover "$OBS_TMP/spool" --out "$OBS_TMP/local.trace" >/dev/null
cargo run --release -q -p tempest-tools --bin tempest -- \
    spool recover "$OBS_TMP/collected/smoke-node0" --out "$OBS_TMP/collected.trace" >/dev/null
cargo run --release -q -p tempest-tools --bin tempest -- \
    report "$OBS_TMP/local.trace" > "$OBS_TMP/local.report"
cargo run --release -q -p tempest-tools --bin tempest -- \
    report "$OBS_TMP/collected.trace" > "$OBS_TMP/collected.report"
diff "$OBS_TMP/local.report" "$OBS_TMP/collected.report"
echo "    collected report byte-identical to local analysis"

echo "==> fleet observability smoke (2 shippers + /fleet.json + /metrics)"
cargo run --release -q -p tempest-bench --bin spool_demo -- "$OBS_TMP/fleet-a" >/dev/null
cargo run --release -q -p tempest-bench --bin spool_demo -- "$OBS_TMP/fleet-b" >/dev/null
# Long-running collector (no --once) with the HTTP surfaces on; both
# bound addresses are published atomically via port files.
cargo run --release -q -p tempest-tools --bin tempest -- \
    collect serve --out "$OBS_TMP/fleet-collected" --addr 127.0.0.1:0 \
    --port-file "$OBS_TMP/fleet.addr" \
    --metrics-addr 127.0.0.1:0 --metrics-port-file "$OBS_TMP/fleet-metrics.addr" >/dev/null &
FLEET_PID=$!
for _ in $(seq 1 100); do
    [ -f "$OBS_TMP/fleet.addr" ] && [ -f "$OBS_TMP/fleet-metrics.addr" ] && break
    sleep 0.1
done
[ -f "$OBS_TMP/fleet-metrics.addr" ] || { echo "collector never published its metrics address" >&2; exit 1; }
cargo run --release -q -p tempest-tools --bin tempest -- \
    ship "$OBS_TMP/fleet-a" --to "$(cat "$OBS_TMP/fleet.addr")" --session fleet-a >/dev/null
cargo run --release -q -p tempest-tools --bin tempest -- \
    ship "$OBS_TMP/fleet-b" --to "$(cat "$OBS_TMP/fleet.addr")" --session fleet-b >/dev/null
# Machine-readable surfaces, fetched curl-free through `tempest fleet`,
# then schema-checked/linted by json_check (2 = exact fleet size).
cargo run --release -q -p tempest-tools --bin tempest -- \
    fleet "$(cat "$OBS_TMP/fleet-metrics.addr")" --json > "$OBS_TMP/fleet.json"
cargo run --release -q -p tempest-tools --bin tempest -- \
    fleet "$(cat "$OBS_TMP/fleet-metrics.addr")" --prom > "$OBS_TMP/fleet.prom"
kill "$FLEET_PID" 2>/dev/null || true
wait "$FLEET_PID" 2>/dev/null || true
cargo run --release -q -p tempest-bench --bin json_check -- fleet "$OBS_TMP/fleet.json" 2
cargo run --release -q -p tempest-bench --bin json_check -- prom "$OBS_TMP/fleet.prom"
echo "    fleet snapshot has both nodes; Prometheus exposition lints clean"

echo "==> analysis cache smoke (second report must hit the cache, byte-identical)"
cargo run --release -q -p tempest-tools --bin tempest -- \
    report "$OBS_TMP/traces/micro-d-node0.trace" --cache "$OBS_TMP/cache" \
    > "$OBS_TMP/cache-cold.report"
cargo run --release -q -p tempest-tools --bin tempest -- \
    report "$OBS_TMP/traces/micro-d-node0.trace" --cache "$OBS_TMP/cache" \
    > "$OBS_TMP/cache-warm.report"
diff "$OBS_TMP/cache-cold.report" "$OBS_TMP/cache-warm.report"
# The hit counter only exists once a lookup actually hits, so its
# presence in the self-metrics proves the warm path was taken.
cargo run --release -q -p tempest-tools --bin tempest -- \
    report "$OBS_TMP/traces/micro-d-node0.trace" --cache "$OBS_TMP/cache" --metrics \
    | grep -q "cache_hits_total" \
    || { echo "cache hit counter missing from --metrics output" >&2; exit 1; }
echo "    cached report byte-identical, hit counter present"

echo "==> query API smoke (tempest serve --once + curl, loopback)"
# Serve the sessions collected by the network smoke above; --once-ready
# fails fast if the catalog scan finds nothing, and --once 3 exits after
# the three curls below so `wait` never hangs.
cargo run --release -q -p tempest-tools --bin tempest -- \
    serve "$OBS_TMP/collected" --addr 127.0.0.1:0 --once 3 --once-ready \
    --port-file "$OBS_TMP/serve.addr" --jobs 2 --no-cache --rescan-ms 0 >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -f "$OBS_TMP/serve.addr" ] && break
    sleep 0.1
done
[ -f "$OBS_TMP/serve.addr" ] || { echo "query daemon never published its address" >&2; exit 1; }
SERVE_ADDR="$(cat "$OBS_TMP/serve.addr")"
curl -fsS "http://$SERVE_ADDR/api/v1/health" > "$OBS_TMP/serve-health.json"
curl -fsS "http://$SERVE_ADDR/api/v1/sessions" > "$OBS_TMP/serve-sessions.json"
curl -fsS "http://$SERVE_ADDR/api/v1/sessions/smoke-node0/hotspots?top=5&sort=temp" \
    > "$OBS_TMP/serve-hotspots.json"
wait "$SERVE_PID"
cargo run --release -q -p tempest-bench --bin json_check -- api "$OBS_TMP/serve-health.json"
cargo run --release -q -p tempest-bench --bin json_check -- api "$OBS_TMP/serve-sessions.json"
cargo run --release -q -p tempest-bench --bin json_check -- api "$OBS_TMP/serve-hotspots.json"
grep -q '"id":"smoke-node0"' "$OBS_TMP/serve-sessions.json" \
    || { echo "served session listing is missing smoke-node0" >&2; exit 1; }
echo "    health/sessions/hotspots answers lint clean against the v1 schema"

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "!! clippy not installed; skipping lint" >&2
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "!! rustfmt not installed; skipping format check" >&2
fi

echo "CI OK"
