#!/usr/bin/env bash
# Local CI gate: build, test, lint, format-check the whole workspace.
# Run from the repository root before pushing. Lint/format steps are
# skipped (with a warning) when the component is not installed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Kill-9 spool durability torture: spawns and SIGKILLs writer
# subprocesses, so it is opt-in. Seeded and bounded (8 iterations);
# override the seed with TEMPEST_TORTURE_SEED.
if [ "${TEMPEST_TORTURE:-0}" = "1" ]; then
    echo "==> crash torture (TEMPEST_TORTURE=1)"
    TEMPEST_TORTURE=1 cargo test -q -p tempest-bench --test crash_torture
else
    echo "--  crash torture skipped (set TEMPEST_TORTURE=1 to run)"
fi

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run -p tempest-bench

echo "==> perf_smoke (refresh BENCH_parse.json)"
cargo run --release -q -p tempest-bench --bin perf_smoke -- BENCH_parse.json >/dev/null

echo "==> BENCH_parse.json schema check"
cargo run --release -q -p tempest-bench --bin json_check -- bench BENCH_parse.json

echo "==> chrome-trace export + schema check"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -q -p tempest-tools --bin tempest -- \
    demo micro-d --out "$OBS_TMP/traces" >/dev/null
cargo run --release -q -p tempest-tools --bin tempest -- \
    export --format chrome-trace "$OBS_TMP/traces/micro-d-node0.trace" \
    --out "$OBS_TMP/trace.json" >/dev/null
cargo run --release -q -p tempest-bench --bin json_check -- chrome "$OBS_TMP/trace.json"

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "!! clippy not installed; skipping lint" >&2
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "!! rustfmt not installed; skipping format check" >&2
fi

echo "CI OK"
