//! Property: the parallel analysis engine is invisible in the output.
//!
//! Whatever `--jobs` is set to, a cluster analysis must produce
//! byte-identical rendered reports and identical error strings — in
//! strict mode, in `--recover` mode, and when a member trace is
//! truncated and goes through the salvage path. The worker count may
//! change wall time only, never a single byte of the result.
//!
//! The same holds one level down for the intra-trace correlate shards:
//! every shard count (including absurd over-sharding) must attribute
//! every sample identically — on generated cluster traces, through the
//! salvage path, and on adversarial hand-built timelines whose intervals
//! straddle every shard boundary.

use proptest::prelude::*;
use tempest_core::correlate::{correlate_with, Correlation};
use tempest_core::timeline::Timeline;
use tempest_core::{report, AnalysisOptions, AnalysisRequest, Engine, NodeProfile};
use tempest_probe::corrupt::truncate_at_fraction;
use tempest_probe::event::{Event, ThreadId};
use tempest_probe::func::FunctionId;
use tempest_probe::{TraceGenerator, TraceSpec};
use tempest_sensors::{SensorId, SensorReading, Temperature};

/// Render an engine result vector exactly like the CLI does: reports in
/// input order, errors in place as their message string.
fn render_all(results: &[Result<NodeProfile, String>]) -> String {
    let mut out = String::new();
    for r in results {
        match r {
            Ok(p) => out.push_str(&report::render_stdout(p)),
            Err(msg) => {
                out.push_str("error: ");
                out.push_str(msg);
                out.push('\n');
            }
        }
    }
    out
}

/// Write a generated cluster to `dir`, optionally truncating one member,
/// and return the file paths in node order.
fn write_cluster(
    dir: &std::path::Path,
    spec: TraceSpec,
    nodes: u32,
    truncate: Option<(u32, f64)>,
) -> Vec<String> {
    let gen = TraceGenerator::new(spec);
    gen.generate_cluster(nodes)
        .iter()
        .map(|t| {
            let path = dir.join(format!("node{}.trace", t.node.node_id));
            let mut bytes = t.to_bytes();
            if let Some((victim, frac)) = truncate {
                if t.node.node_id == victim {
                    bytes = truncate_at_fraction(&bytes, frac);
                }
            }
            std::fs::write(&path, &bytes).unwrap();
            path.to_str().unwrap().to_string()
        })
        .collect()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-par-det-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Healthy cluster, strict mode: every worker count renders the same
    // bytes as the single-threaded engine.
    #[test]
    fn jobs_count_never_changes_strict_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        threads in 1u32..5,
        jobs in 2usize..6,
    ) {
        let spec = TraceSpec { seed, events, threads, ..Default::default() };
        let dir = scratch_dir(&format!("strict-{seed}-{events}-{threads}-{jobs}"));
        let paths = write_cluster(&dir, spec, 3, None);

        let sequential = AnalysisRequest::new().analyze_on(&Engine::new(1), &paths).profiles;
        let parallel = AnalysisRequest::new().analyze_on(&Engine::new(jobs), &paths).profiles;
        prop_assert_eq!(render_all(&sequential), render_all(&parallel));

        std::fs::remove_dir_all(&dir).ok();
    }

    // One member truncated: strict mode must yield the identical error
    // string in place, and `--recover` must salvage to identical bytes,
    // regardless of worker count.
    #[test]
    fn jobs_count_never_changes_salvage_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        frac in 0.3f64..0.95,
        jobs in 2usize..6,
    ) {
        let spec = TraceSpec { seed, events, ..Default::default() };
        let dir = scratch_dir(&format!("salvage-{seed}-{events}-{jobs}"));
        let paths = write_cluster(&dir, spec, 3, Some((1, frac)));

        for options in [AnalysisOptions::default(), AnalysisOptions::recovering()] {
            let sequential = AnalysisRequest::new().with_options(options).analyze_on(&Engine::new(1), &paths).profiles;
            let parallel = AnalysisRequest::new().with_options(options).analyze_on(&Engine::new(jobs), &paths).profiles;
            // Same success/failure shape member by member...
            let shape = |rs: &[Result<NodeProfile, String>]| -> Vec<bool> {
                rs.iter().map(Result::is_ok).collect()
            };
            prop_assert_eq!(shape(&sequential), shape(&parallel));
            // ...and byte-identical rendering, errors included.
            prop_assert_eq!(render_all(&sequential), render_all(&parallel));
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Compare two correlations statistic by statistic (every per-function,
/// per-sensor summary, both attribution kinds, plus the unattributed
/// tally and the resort flag).
fn assert_correlations_match(a: &Correlation, b: &Correlation) -> Result<(), String> {
    prop_assert_eq!(a.unattributed, b.unattributed);
    prop_assert_eq!(a.resorted, b.resorted);
    prop_assert_eq!(a.per_function.len(), b.per_function.len());
    for (func, fa) in &a.per_function {
        let fb = &b.per_function[func];
        prop_assert_eq!(fa.inclusive.len(), fb.inclusive.len());
        prop_assert_eq!(fa.exclusive.len(), fb.exclusive.len());
        for (sensor, sa) in &fa.inclusive {
            prop_assert_eq!(sa.summary(), fb.inclusive[sensor].summary());
        }
        for (sensor, sa) in &fa.exclusive {
            prop_assert_eq!(sa.summary(), fb.exclusive[sensor].summary());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Correlate shard count is invisible in the rendered report: the
    // same generated trace analysed with 1 shard and with 2..8 shards
    // produces byte-identical output.
    #[test]
    fn shard_count_never_changes_report_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        threads in 1u32..5,
        shards in 2usize..9,
    ) {
        let spec = TraceSpec { seed, events, threads, ..Default::default() };
        let dir = scratch_dir(&format!("shards-{seed}-{events}-{threads}-{shards}"));
        let paths = write_cluster(&dir, spec, 1, None);

        let one = AnalysisOptions { shards: 1, ..Default::default() };
        let many = AnalysisOptions { shards, ..Default::default() };
        let engine = Engine::new(1);
        let sequential = AnalysisRequest::new().with_options(one).analyze_on(&engine, &paths).profiles;
        let sharded = AnalysisRequest::new().with_options(many).analyze_on(&engine, &paths).profiles;
        prop_assert_eq!(render_all(&sequential), render_all(&sharded));

        std::fs::remove_dir_all(&dir).ok();
    }

    // Same through the salvage path: a truncated trace analysed under
    // `--recover` renders identically at every shard count.
    #[test]
    fn shard_count_never_changes_salvage_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        frac in 0.3f64..0.95,
        shards in 2usize..9,
    ) {
        let spec = TraceSpec { seed, events, ..Default::default() };
        let dir = scratch_dir(&format!("shards-salvage-{seed}-{events}-{shards}"));
        let paths = write_cluster(&dir, spec, 1, Some((0, frac)));

        let one = AnalysisOptions { shards: 1, recover: true, ..Default::default() };
        let many = AnalysisOptions { shards, recover: true, ..Default::default() };
        let engine = Engine::new(1);
        let sequential = AnalysisRequest::new().with_options(one).analyze_on(&engine, &paths).profiles;
        let sharded = AnalysisRequest::new().with_options(many).analyze_on(&engine, &paths).profiles;
        prop_assert_eq!(render_all(&sequential), render_all(&sharded));

        std::fs::remove_dir_all(&dir).ok();
    }

    // Adversarial hand-built timeline: a full-span root on every thread
    // (straddling every possible shard boundary), random nested bursts,
    // and samples landing exactly on interval edges. Every shard count —
    // including more shards than samples — must attribute identically.
    #[test]
    fn adversarial_straddling_intervals_shard_identically(
        seed in 1u64..u64::MAX,
        n_threads in 1u32..4,
        bursts in 1usize..12,
        n_samples in 1usize..150,
        shuffle in prop::bool::ANY,
    ) {
        let span = 1_000u64;
        let mut x = seed | 1;
        let mut rng = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m.max(1)
        };

        let mut events = Vec::new();
        for th in 0..n_threads {
            let t = ThreadId(th);
            // Root interval covering the whole trace: straddles every
            // shard boundary by construction.
            events.push(Event::enter(0, t, FunctionId(0)));
            let mut cursor = 1u64;
            for _ in 0..bursts {
                let start = cursor + rng(40);
                let dur = 1 + rng(60);
                let end = (start + dur).min(span - 1);
                if start >= end {
                    break;
                }
                let f = FunctionId(1 + rng(4) as u32);
                events.push(Event::enter(start, t, f));
                // Possibly a 1-tick innermost child — the smallest
                // interval that can sit exactly on a shard boundary.
                if end - start >= 3 {
                    let mid = start + 1 + rng(end - start - 2);
                    events.push(Event::enter(mid, t, FunctionId(5)));
                    events.push(Event::exit(mid + 1, t, FunctionId(5)));
                }
                events.push(Event::exit(end, t, f));
                cursor = end;
            }
            events.push(Event::exit(span, t, FunctionId(0)));
        }
        events.sort_by_key(|e| e.timestamp_ns);
        let timeline = Timeline::build(&events);

        // Samples on interval edges and everywhere between, quantised
        // values, optionally shuffled to also exercise the resort path.
        let mut samples: Vec<SensorReading> = (0..n_samples)
            .map(|i| {
                let ts = rng(span + 20); // a tail lands after every exit
                let sensor = SensorId(rng(2) as u16);
                let v = 30.0 + rng(9) as f64 * 0.5;
                let _ = i;
                SensorReading::new(sensor, ts, Temperature::from_celsius(v))
            })
            .collect();
        if !shuffle {
            samples.sort_by_key(|s| s.timestamp_ns);
        }

        let sequential = correlate_with(&timeline, &samples, 1);
        for shards in [2usize, 3, 5, 8, 64, n_samples + 7] {
            let sharded = correlate_with(&timeline, &samples, shards);
            assert_correlations_match(&sequential, &sharded)?;
        }
    }
}

/// Deterministic spot check: the exact acceptance shape (4 nodes, one
/// salvaged member, recover mode) at 1/2/4 workers, compared pairwise.
#[test]
fn four_node_recover_identical_at_all_widths() {
    let spec = TraceSpec {
        seed: 99,
        events: 4_000,
        ..Default::default()
    };
    let dir = scratch_dir("fixed");
    let paths = write_cluster(&dir, spec, 4, Some((2, 0.6)));

    let sequential = AnalysisRequest::new()
        .recover(true)
        .analyze_on(&Engine::new(1), &paths)
        .profiles;
    assert!(
        sequential[2].as_ref().is_ok_and(|p| p.quality.recovered),
        "truncated member must go through the salvage path"
    );
    let reference = render_all(&sequential);
    for jobs in [2usize, 4, 8] {
        let got = render_all(
            &AnalysisRequest::new()
                .recover(true)
                .analyze_on(&Engine::new(jobs), &paths)
                .profiles,
        );
        assert_eq!(reference, got, "jobs={jobs} diverged from sequential");
    }
    std::fs::remove_dir_all(&dir).ok();
}
