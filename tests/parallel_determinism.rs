//! Property: the parallel analysis engine is invisible in the output.
//!
//! Whatever `--jobs` is set to, a cluster analysis must produce
//! byte-identical rendered reports and identical error strings — in
//! strict mode, in `--recover` mode, and when a member trace is
//! truncated and goes through the salvage path. The worker count may
//! change wall time only, never a single byte of the result.

use proptest::prelude::*;
use tempest_core::{report, AnalysisOptions, Engine, NodeProfile};
use tempest_probe::corrupt::truncate_at_fraction;
use tempest_probe::{TraceGenerator, TraceSpec};

/// Render an engine result vector exactly like the CLI does: reports in
/// input order, errors in place as their message string.
fn render_all(results: &[Result<NodeProfile, String>]) -> String {
    let mut out = String::new();
    for r in results {
        match r {
            Ok(p) => out.push_str(&report::render_stdout(p)),
            Err(msg) => {
                out.push_str("error: ");
                out.push_str(msg);
                out.push('\n');
            }
        }
    }
    out
}

/// Write a generated cluster to `dir`, optionally truncating one member,
/// and return the file paths in node order.
fn write_cluster(
    dir: &std::path::Path,
    spec: TraceSpec,
    nodes: u32,
    truncate: Option<(u32, f64)>,
) -> Vec<String> {
    let gen = TraceGenerator::new(spec);
    gen.generate_cluster(nodes)
        .iter()
        .map(|t| {
            let path = dir.join(format!("node{}.trace", t.node.node_id));
            let mut bytes = t.to_bytes();
            if let Some((victim, frac)) = truncate {
                if t.node.node_id == victim {
                    bytes = truncate_at_fraction(&bytes, frac);
                }
            }
            std::fs::write(&path, &bytes).unwrap();
            path.to_str().unwrap().to_string()
        })
        .collect()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-par-det-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Healthy cluster, strict mode: every worker count renders the same
    // bytes as the single-threaded engine.
    #[test]
    fn jobs_count_never_changes_strict_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        threads in 1u32..5,
        jobs in 2usize..6,
    ) {
        let spec = TraceSpec { seed, events, threads, ..Default::default() };
        let dir = scratch_dir(&format!("strict-{seed}-{events}-{threads}-{jobs}"));
        let paths = write_cluster(&dir, spec, 3, None);

        let sequential = Engine::new(1).analyze_files(&paths, AnalysisOptions::default());
        let parallel = Engine::new(jobs).analyze_files(&paths, AnalysisOptions::default());
        prop_assert_eq!(render_all(&sequential), render_all(&parallel));

        std::fs::remove_dir_all(&dir).ok();
    }

    // One member truncated: strict mode must yield the identical error
    // string in place, and `--recover` must salvage to identical bytes,
    // regardless of worker count.
    #[test]
    fn jobs_count_never_changes_salvage_output(
        seed in 0u64..1_000,
        events in 500usize..3_000,
        frac in 0.3f64..0.95,
        jobs in 2usize..6,
    ) {
        let spec = TraceSpec { seed, events, ..Default::default() };
        let dir = scratch_dir(&format!("salvage-{seed}-{events}-{jobs}"));
        let paths = write_cluster(&dir, spec, 3, Some((1, frac)));

        for options in [AnalysisOptions::default(), AnalysisOptions::recovering()] {
            let sequential = Engine::new(1).analyze_files(&paths, options);
            let parallel = Engine::new(jobs).analyze_files(&paths, options);
            // Same success/failure shape member by member...
            let shape = |rs: &[Result<NodeProfile, String>]| -> Vec<bool> {
                rs.iter().map(Result::is_ok).collect()
            };
            prop_assert_eq!(shape(&sequential), shape(&parallel));
            // ...and byte-identical rendering, errors included.
            prop_assert_eq!(render_all(&sequential), render_all(&parallel));
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic spot check: the exact acceptance shape (4 nodes, one
/// salvaged member, recover mode) at 1/2/4 workers, compared pairwise.
#[test]
fn four_node_recover_identical_at_all_widths() {
    let spec = TraceSpec {
        seed: 99,
        events: 4_000,
        ..Default::default()
    };
    let dir = scratch_dir("fixed");
    let paths = write_cluster(&dir, spec, 4, Some((2, 0.6)));

    let sequential = Engine::new(1).analyze_files(&paths, AnalysisOptions::recovering());
    assert!(
        sequential[2].as_ref().is_ok_and(|p| p.quality.recovered),
        "truncated member must go through the salvage path"
    );
    let reference = render_all(&sequential);
    for jobs in [2usize, 4, 8] {
        let got =
            render_all(&Engine::new(jobs).analyze_files(&paths, AnalysisOptions::recovering()));
        assert_eq!(reference, got, "jobs={jobs} diverged from sequential");
    }
    std::fs::remove_dir_all(&dir).ok();
}
