//! Loopback end-to-end tests for the network collection path:
//! spool → `tempest_probe::ship` → `tempest-collect` → `spool::recover`
//! → analyze. The acceptance bar is byte-identity: analyzing the
//! collector's copy of a session must produce exactly the same rendered
//! report as analyzing the source spool locally.
//!
//! Every test binds ephemeral ports (`127.0.0.1:0`) and synchronizes on
//! protocol completion (thread joins, `ShipReport`), never wall-clock
//! sleeps.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tempest_collect::{Collector, CollectorConfig, CollectorHandle};
use tempest_core::report::render_stdout;
use tempest_core::AnalysisRequest;
use tempest_probe::ship::{self, RetryPolicy, ShipConfig};
use tempest_probe::spool::{self, FsyncPolicy, SpoolConfig, SpoolWriter};
use tempest_probe::trace::SensorMeta;
use tempest_probe::{Event, EventKind, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
use tempest_sensors::{SensorId, SensorKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-shiptest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn node(node_id: u32) -> NodeMeta {
    NodeMeta {
        node_id,
        hostname: format!("node{node_id}.loop"),
        sensors: vec![SensorMeta {
            id: SensorId(0),
            label: "die".into(),
            kind: SensorKind::CpuCore,
        }],
    }
}

fn functions() -> Vec<FunctionDef> {
    (0..3)
        .map(|i| FunctionDef {
            id: FunctionId(i),
            name: format!("work_{i}"),
            address: 0x40_0000 + 16 * i as u64,
            kind: ScopeKind::Function,
        })
        .collect()
}

fn batch(i: u64) -> Vec<Event> {
    let t = i * 10_000;
    let f = FunctionId((i % 3) as u32);
    vec![
        Event::enter(t, ThreadId(0), f),
        Event::sample(t + 1_000, SensorId(0), 40.0 + (i % 20) as f64),
        Event::exit(t + 9_000, ThreadId(0), f),
    ]
}

/// Write a complete spool: `batches` fsynced batches, rotating segments,
/// sealed with a footer.
fn build_spool(dir: &Path, node_id: u32, batches: u64, segment_bytes: u64) {
    let config = SpoolConfig::new(dir)
        .fsync(FsyncPolicy::PerBatch)
        .segment_bytes(segment_bytes);
    let mut w = SpoolWriter::create(&config, node(node_id)).unwrap();
    for i in 0..batches {
        w.append_batch(&batch(i)).unwrap();
        if w.should_rotate() {
            w.rotate(&functions()).unwrap();
        }
    }
    w.finish(&functions(), 0, 0).unwrap();
}

fn start_collector(
    out: &Path,
) -> (
    CollectorHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(out)).unwrap();
    let handle = collector.handle().unwrap();
    let thread = std::thread::spawn(move || collector.run());
    (handle, thread)
}

fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_failures: 10,
        base_ms: 1,
        cap_ms: 5,
        seed: 0xD15C,
    }
}

fn ship_to(dir: &Path, addr: SocketAddr, session: &str) -> ship::ShipReport {
    let mut config = ShipConfig::new(dir, addr.to_string());
    config.session = session.to_string();
    config.retry = quick_retries();
    ship::ship(&config).unwrap()
}

/// Render the full analysis of a recovered spool — the byte-identity
/// comparison target.
fn analysis_of(dir: &Path) -> (tempest_probe::Trace, String) {
    let (trace, _report) = spool::recover(dir).unwrap();
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    (trace, render_stdout(&profile))
}

#[test]
fn shipped_session_is_byte_identical_to_local_analysis() {
    let src = temp_dir("e2e-src");
    let out = temp_dir("e2e-out");
    build_spool(&src, 1, 60, 4096); // several segments

    let (handle, server) = start_collector(&out);
    let report = ship_to(&src, handle.addr(), "e2e");
    handle.shutdown();
    server.join().unwrap().unwrap();

    assert!(report.complete, "footer must ship: {report:?}");
    assert!(!report.degraded);
    assert!(report.frames_acked >= 60, "one frame per batch at minimum");
    assert_eq!(report.frames_sent, report.frames_acked);

    let (src_trace, src_report) = analysis_of(&src);
    let collected = out.join("e2e-node1");
    let (dst_trace, dst_report) = analysis_of(&collected);
    assert_eq!(src_trace, dst_trace, "collected trace differs from local");
    assert_eq!(src_report, dst_report, "rendered analyses differ");

    let (_, spool_report) = spool::recover(&collected).unwrap();
    assert!(spool_report.clean_shutdown, "shipped footer marks clean");
    assert_eq!(spool_report.frames_deduped, 0, "clean run has no re-sends");

    // The persisted cursor lets a later shipper skip everything.
    let cursor = tempest_probe::ship::Cursor::load(&src).unwrap();
    assert_eq!((cursor.seg, cursor.off), report.cursor);

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn reshipping_a_collected_session_duplicates_nothing() {
    let src = temp_dir("reship-src");
    let out = temp_dir("reship-out");
    build_spool(&src, 2, 20, 8192);

    let (handle, server) = start_collector(&out);
    let first = ship_to(&src, handle.addr(), "reship");
    assert!(first.complete);

    // Forget all client-side progress: the server's WELCOME cursor alone
    // must prevent duplicates.
    std::fs::remove_file(src.join(spool::SHIP_CURSOR_NAME)).unwrap();
    let second = ship_to(&src, handle.addr(), "reship");
    handle.shutdown();
    server.join().unwrap().unwrap();

    assert_eq!(second.frames_acked, 0, "nothing new to ack");
    assert_eq!(
        second.frames_skipped, first.frames_acked,
        "every frame skipped by the server's resume cursor"
    );

    let (src_trace, _) = analysis_of(&src);
    let (dst_trace, _) = analysis_of(&out.join("reship-node2"));
    assert_eq!(src_trace, dst_trace);
    let (_, spool_report) = spool::recover(&out.join("reship-node2")).unwrap();
    assert_eq!(spool_report.frames_deduped, 0, "no duplicate ever hit disk");

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn collector_restart_resumes_idempotently() {
    let src = temp_dir("resume-src");
    let out = temp_dir("resume-out");

    // First half of the session: spool without a footer yet.
    let config = SpoolConfig::new(&src)
        .fsync(FsyncPolicy::PerBatch)
        .segment_bytes(4096);
    let mut w = SpoolWriter::create(&config, node(3)).unwrap();
    for i in 0..30 {
        w.append_batch(&batch(i)).unwrap();
        if w.should_rotate() {
            w.rotate(&functions()).unwrap();
        }
    }

    let (handle, server) = start_collector(&out);
    let partial = ship_to(&src, handle.addr(), "resume");
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(!partial.complete, "no footer yet");
    assert!(partial.frames_acked > 0);

    // Session continues and ends while the collector is down.
    for i in 30..60 {
        w.append_batch(&batch(i)).unwrap();
        if w.should_rotate() {
            w.rotate(&functions()).unwrap();
        }
    }
    w.finish(&functions(), 0, 0).unwrap();

    // A fresh collector process on the same output directory derives the
    // resume cursor from its own segments and takes only the remainder.
    let (handle, server) = start_collector(&out);
    let rest = ship_to(&src, handle.addr(), "resume");
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(rest.complete, "second ship finishes the session: {rest:?}");
    assert_eq!(
        rest.frames_skipped, partial.frames_acked,
        "already-durable frames are skipped, not re-sent"
    );

    let (src_trace, src_report) = analysis_of(&src);
    let collected = out.join("resume-node3");
    let (dst_trace, dst_report) = analysis_of(&collected);
    assert_eq!(src_trace, dst_trace);
    assert_eq!(src_report, dst_report);
    let (_, spool_report) = spool::recover(&collected).unwrap();
    assert!(spool_report.clean_shutdown);
    assert_eq!(spool_report.frames_deduped, 0);

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn three_nodes_ship_concurrently_to_one_collector() {
    let out = temp_dir("multi-out");
    let srcs: Vec<PathBuf> = (0..3u32)
        .map(|n| {
            let dir = temp_dir(&format!("multi-src{n}"));
            build_spool(&dir, n + 10, 25 + n as u64 * 7, 4096);
            dir
        })
        .collect();

    let (handle, server) = start_collector(&out);
    let addr = handle.addr();
    let shippers: Vec<_> = srcs
        .iter()
        .cloned()
        .map(|dir| std::thread::spawn(move || ship_to(&dir, addr, "cluster-run")))
        .collect();
    let reports: Vec<_> = shippers.into_iter().map(|t| t.join().unwrap()).collect();
    handle.shutdown();
    server.join().unwrap().unwrap();

    for (n, (src, report)) in srcs.iter().zip(&reports).enumerate() {
        assert!(report.complete, "node {n} incomplete: {report:?}");
        let (src_trace, src_text) = analysis_of(src);
        let collected = out.join(format!("cluster-run-node{}", n + 10));
        let (dst_trace, dst_text) = analysis_of(&collected);
        assert_eq!(src_trace, dst_trace, "node {n} trace mismatch");
        assert_eq!(src_text, dst_text, "node {n} analysis mismatch");
    }
    assert_eq!(
        handle
            .stats()
            .sessions_completed
            .load(std::sync::atomic::Ordering::Relaxed),
        3
    );

    for src in &srcs {
        std::fs::remove_dir_all(src).ok();
    }
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn follow_mode_tails_a_live_session_to_completion() {
    let src = temp_dir("follow-src");
    let out = temp_dir("follow-out");
    let (handle, server) = start_collector(&out);
    let addr = handle.addr();

    // Start the shipper before the session even exists on disk fully:
    // it must tail segments as they appear and stop at the footer.
    let config = SpoolConfig::new(&src)
        .fsync(FsyncPolicy::PerBatch)
        .segment_bytes(4096);
    let mut w = SpoolWriter::create(&config, node(7)).unwrap();
    w.append_batch(&batch(0)).unwrap();

    let src_for_shipper = src.clone();
    let shipper = std::thread::spawn(move || {
        let mut config = ShipConfig::new(&src_for_shipper, addr.to_string());
        config.session = "live".into();
        config.follow = true;
        config.retry = quick_retries();
        config.poll = Duration::from_millis(5);
        ship::ship(&config).unwrap()
    });

    for i in 1..40 {
        w.append_batch(&batch(i)).unwrap();
        if w.should_rotate() {
            w.rotate(&functions()).unwrap();
        }
    }
    w.finish(&functions(), 0, 0).unwrap();

    // The shipper returns exactly when the footer is acked — protocol
    // completion is the synchronization point, not a sleep.
    let report = shipper.join().unwrap();
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(
        report.complete,
        "follow mode must end at the footer: {report:?}"
    );

    let (src_trace, src_text) = analysis_of(&src);
    let (dst_trace, dst_text) = analysis_of(&out.join("live-node7"));
    assert_eq!(src_trace, dst_trace);
    assert_eq!(src_text, dst_text);

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn collector_enforces_frame_size_limit() {
    let src = temp_dir("limit-src");
    let out = temp_dir("limit-out");
    // A single batch big enough to blow a tiny frame limit.
    let config = SpoolConfig::new(&src).fsync(FsyncPolicy::PerBatch);
    let mut w = SpoolWriter::create(&config, node(4)).unwrap();
    let big: Vec<Event> = (0..100).flat_map(batch).collect();
    w.append_batch(&big).unwrap();
    w.finish(&functions(), 0, 0).unwrap();

    let mut cc = CollectorConfig::new(&out);
    cc.max_frame_bytes = 1024; // far below the big event frame
    let collector = Collector::bind("127.0.0.1:0", cc).unwrap();
    let handle = collector.handle().unwrap();
    let server = std::thread::spawn(move || collector.run());

    let mut sc = ShipConfig::new(&src, handle.addr().to_string());
    sc.session = "limit".into();
    sc.retry = RetryPolicy {
        max_failures: 2,
        base_ms: 1,
        cap_ms: 2,
        seed: 5,
    };
    let report = ship::ship(&sc).unwrap();
    handle.shutdown();
    server.join().unwrap().unwrap();

    assert!(report.degraded, "oversize frames exhaust the retry budget");
    assert!(!report.complete);
    // The local spool is untouched and still fully analyzable.
    let (trace, rec) = spool::recover(&src).unwrap();
    assert!(rec.clean_shutdown);
    assert_eq!(trace.events.len() as u64, 100 * 2);

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn collector_sheds_politely_when_disk_budget_is_exhausted() {
    let src = temp_dir("shed-src");
    let out = temp_dir("shed-out");
    build_spool(&src, 5, 40, 4096);

    let mut cc = CollectorConfig::new(&out);
    cc.disk_budget_bytes = Some(2_048); // room for a few frames only
    let collector = Collector::bind("127.0.0.1:0", cc).unwrap();
    let handle = collector.handle().unwrap();
    let server = std::thread::spawn(move || collector.run());

    let mut sc = ShipConfig::new(&src, handle.addr().to_string());
    sc.session = "shed".into();
    sc.retry = RetryPolicy {
        max_failures: 2,
        base_ms: 1,
        cap_ms: 2,
        seed: 6,
    };
    let report = ship::ship(&sc).unwrap();
    let shed = handle
        .stats()
        .shed
        .load(std::sync::atomic::Ordering::Relaxed);
    handle.shutdown();
    server.join().unwrap().unwrap();

    assert!(
        report.degraded,
        "a full collector cannot complete a session"
    );
    assert!(shed > 0, "the shed policy must have fired");
    // Whatever was acked before the budget ran out is durable and the
    // collected prefix is itself a recoverable spool.
    if report.frames_acked > 2 {
        let (_, rec) = spool::recover(&out.join("shed-node5")).unwrap();
        assert!(!rec.clean_shutdown);
        assert_eq!(rec.frames_deduped, 0);
    }

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn events_survive_exactly_once_under_every_outcome() {
    // A tiny sanity net over EventKind coverage in the shipped path:
    // gaps, samples, enters, exits all arrive with payloads intact.
    let src = temp_dir("kinds-src");
    let out = temp_dir("kinds-out");
    let config = SpoolConfig::new(&src).fsync(FsyncPolicy::PerBatch);
    let mut w = SpoolWriter::create(&config, node(6)).unwrap();
    w.append_batch(&[
        Event::enter(1, ThreadId(2), FunctionId(1)),
        Event::gap(2, SensorId(0)),
        Event::sample(3, SensorId(0), 55.25),
        Event::exit(4, ThreadId(2), FunctionId(1)),
    ])
    .unwrap();
    w.finish(&functions(), 0, 0).unwrap();

    let (handle, server) = start_collector(&out);
    let report = ship_to(&src, handle.addr(), "kinds");
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(report.complete);

    let (trace, _) = spool::recover(&out.join("kinds-node6")).unwrap();
    assert_eq!(trace.events.len(), 3); // enter, gap, exit
    assert_eq!(trace.samples.len(), 1);
    assert!((trace.samples[0].temperature.celsius() - 55.25).abs() < 1e-9);
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Gap { .. })));

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}
