//! Hostile-input hardening: decoders fed arbitrary and adversarial bytes
//! must fail with typed errors or bounded partial results — never a
//! panic, an over-budget allocation, or a hang — and the damage must
//! surface in `DataQuality` where the analysis pipeline reports it.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use tempest_core::limits::{CancelToken, DecodeLimits};
use tempest_core::{AnalysisOptions, AnalysisRequest};
use tempest_probe::spool::{self, SpoolConfig, SpoolWriter};
use tempest_probe::synth::{TraceGenerator, TraceSpec};
use tempest_probe::trace::{Trace, TraceError};
use tempest_probe::NodeMeta;

fn corpus_trace() -> Trace {
    TraceGenerator::new(TraceSpec {
        events: 2_000,
        duration_ns: 5_000_000_000,
        sample_interval_ns: 100_000_000,
        ..Default::default()
    })
    .generate(0)
}

/// Bytes actually retained by a decoded trace's bulk collections.
fn decoded_bytes(trace: &Trace) -> u64 {
    (trace.events.len() * std::mem::size_of::<tempest_probe::Event>()) as u64
        + (trace.samples.len() * std::mem::size_of::<tempest_sensors::SensorReading>()) as u64
}

/// A mutation plan applied to a valid byte stream: truncation point plus
/// a set of byte overwrites.
fn mutations() -> impl Strategy<Value = (usize, Vec<(usize, u16)>)> {
    (
        0usize..1_000_000,
        prop::collection::vec((0usize..1_000_000, 0u16..256), 0..24),
    )
}

fn apply(bytes: &mut Vec<u8>, truncate_at: usize, writes: &[(usize, u16)]) {
    if !bytes.is_empty() {
        let keep = truncate_at % (bytes.len() + 1);
        bytes.truncate(keep);
    }
    for &(at, value) in writes {
        if !bytes.is_empty() {
            let i = at % bytes.len();
            bytes[i] = value as u8;
        }
    }
}

proptest! {
    // `read_salvage` (the salvage decoder) on arbitrarily mutated trace
    // bytes: no panic, and nothing it returns exceeds the strict byte
    // budget.
    #[test]
    fn mutated_trace_bytes_never_panic_nor_blow_the_budget(
        (truncate_at, writes) in mutations()
    ) {
        let mut bytes = corpus_trace().to_bytes();
        apply(&mut bytes, truncate_at, &writes);
        let strict = DecodeLimits::strict();

        let mut cursor = std::io::Cursor::new(bytes.clone());
        let _ = Trace::read_salvage(&mut cursor); // default limits: must not panic

        if let Ok((trace, _)) =
            Trace::decode_salvage_with(&bytes, &strict, &CancelToken::default())
        {
            prop_assert!(
                decoded_bytes(&trace) <= strict.budget_bytes.saturating_mul(2),
                "decoded {} bytes against a {} byte budget",
                decoded_bytes(&trace),
                strict.budget_bytes
            );
        }
    }

    // `spool::recover` over a directory whose segment was arbitrarily
    // mutated: an error or a partial trace, never a panic.
    #[test]
    fn mutated_spool_segments_never_panic(
        (truncate_at, writes) in mutations()
    ) {
        let trace = corpus_trace();
        let base = std::env::temp_dir().join(format!(
            "tempest-hostile-{}-{truncate_at}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&base).ok();
        let cfg = SpoolConfig::new(&base);
        let mut w = SpoolWriter::create(&cfg, NodeMeta::anonymous()).unwrap();
        w.append_batch(&trace.events[..500]).unwrap();
        w.finish(&trace.functions, 0, 0).unwrap();

        for (_, path) in spool::list_segment_files(&base).unwrap() {
            let mut bytes = std::fs::read(&path).unwrap();
            apply(&mut bytes, truncate_at, &writes);
            std::fs::write(&path, &bytes).unwrap();
        }
        let _ = spool::recover(&base);
        let _ = spool::recover_with(&base, &DecodeLimits::strict(), &CancelToken::default());
        let _ = spool::fsck_dir(&base, &DecodeLimits::strict());
        std::fs::remove_dir_all(&base).ok();
    }
}

/// A crafted header declaring 2^31 functions is refused with a typed
/// `LimitExceeded` — long before any allocation of that size.
#[test]
fn hostile_declared_count_is_a_typed_limit_error() {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"TMPEST01");
    buf.extend_from_slice(&9u32.to_le_bytes()); // node_id
    buf.extend_from_slice(&1u16.to_le_bytes()); // hostname len
    buf.push(b'h');
    buf.extend_from_slice(&0u16.to_le_bytes()); // sensors
    buf.extend_from_slice(&(1u32 << 31).to_le_bytes()); // functions

    let err = Trace::decode_with(&buf, &DecodeLimits::strict(), &CancelToken::default())
        .expect_err("2^31 declared functions must not decode");
    assert!(matches!(err, TraceError::Limit(_)), "{err:?}");
}

/// A `LimitExceeded` recorded during salvage flows through analysis into
/// `DataQuality`, where `was_limited` and the Display line expose it.
#[test]
fn limit_overrun_surfaces_in_data_quality() {
    let trace = corpus_trace();
    let mut bytes = trace.to_bytes();
    // Give the decode a budget far below the trace's event volume.
    let tiny = DecodeLimits {
        budget_bytes: 4 * 1024,
        ..DecodeLimits::default()
    };
    let (partial, report) =
        Trace::decode_salvage_with(&bytes, &tiny, &CancelToken::default()).unwrap();
    let limit = report.limit.expect("budget overrun recorded");
    assert!(partial.events.len() < trace.events.len());

    let options = AnalysisOptions::recovering();
    let profile = AnalysisRequest::new()
        .with_options(options)
        .analyze_salvaged(&partial, Some(&report))
        .expect("partial analyzes");
    assert!(profile.quality.was_limited());
    assert_eq!(profile.quality.limit, Some(limit));
    let line = profile.quality.to_string();
    assert!(line.contains("stopped by limit"), "{line}");

    // Keep `bytes` mutable use meaningful: the same stream truncated by
    // one byte still salvages under the tiny budget without panicking.
    bytes.pop();
    let _ = Trace::decode_salvage_with(&bytes, &tiny, &CancelToken::default());
}

/// A deadline that expires mid-analysis still renders partial results:
/// the walk stops, the quality line says so, and nothing hangs.
#[test]
fn expired_deadline_still_renders_partial_results() {
    let trace = corpus_trace();
    let options = AnalysisOptions {
        recover: true,
        deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..Default::default()
    };
    let started = Instant::now();
    let profile = AnalysisRequest::new()
        .with_options(options)
        .analyze_trace(&trace)
        .expect("deadline yields partial profile");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "expired deadline must cut work short"
    );
    assert!(profile.quality.deadline_hit);
    assert!(profile.quality.was_limited());
    assert!(
        profile.quality.to_string().contains("deadline hit"),
        "{}",
        profile.quality
    );
}
