//! Integration: the headline experiment *shapes* as assertions, so
//! `cargo test` guards what the `exp_*` binaries demonstrate. Workload
//! classes are reduced where the shape survives it; anything slower lives
//! in the binaries only.

use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::analysis::{detect_sync_rise, hotspots};
use tempest_core::plot::TimeSeries;
use tempest_core::{AnalysisRequest, ClusterProfile};
use tempest_sensors::SensorId;
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn die_series(run: &ClusterRun) -> Vec<TimeSeries> {
    run.traces
        .iter()
        .map(|t| {
            TimeSeries::from_samples(
                format!("node {}", t.node.node_id + 1),
                &t.samples,
                SensorId(3),
                0,
            )
        })
        .collect()
}

/// E5/Figure 3: FT at class C — ~50 % all-to-all, thermally divergent nodes.
#[test]
fn e5_ft_comm_heavy_and_divergent() {
    let (run, cluster) = run_and_parse(NpbBenchmark::Ft, Class::C);
    let f = run.engine.comm_fraction(0);
    assert!(
        (0.3..=0.7).contains(&f),
        "FT comm fraction {f:.2} not ≈ 0.5"
    );
    let (lo, hi) = cluster.node_divergence_f().unwrap();
    assert!(hi - lo > 1.0, "FT nodes should diverge thermally");
}

/// E6/Figure 4: BT — synchronised warm-up near 1.5 s, hot/cool node split.
#[test]
fn e6_bt_synchronised_rise() {
    let (run, cluster) = run_and_parse(NpbBenchmark::Bt, Class::C);
    let series = die_series(&run);
    let t = detect_sync_rise(&series, 1.0, 1.5).expect("sync rise detected");
    assert!(
        (0.5..=6.0).contains(&t),
        "sync at {t:.1}s, paper says ≈1.5 s"
    );
    let peaks: Vec<f64> = cluster.node_summaries().iter().map(|s| s.max_f).collect();
    let spread = peaks.iter().cloned().fold(f64::MIN, f64::max)
        - peaks.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread > 1.0, "nodes should peak differently: {peaks:?}");
}

/// E8/Table 3 ordering at the class the paper used.
#[test]
fn e8_table3_ordering() {
    let (_, cluster) = run_and_parse(NpbBenchmark::Bt, Class::C);
    let n0 = &cluster.nodes[0];
    let t = |name: &str| n0.by_name(name).unwrap().inclusive_ns;
    assert!(t("adi_") > t("matvec_sub"));
    assert!(t("matvec_sub") > t("matmul_sub"));
}

/// E12: DVFS on the hot spot cools it and costs localised time.
#[test]
fn e12_dvfs_cools_hot_spot() {
    let cfg = ClusterRunConfig::paper_default();
    let base_programs = NpbBenchmark::Bt.programs(Class::A, 4);
    let base_run = ClusterRun::execute(&cfg, &base_programs);
    let base = parse(&base_run);
    let target = hotspots(&base.nodes[0], 1)[0].name.clone();

    let opt_programs: Vec<_> = base_programs
        .iter()
        .map(|p| p.with_dvfs_on(&target, 0.55))
        .collect();
    let opt_run = ClusterRun::execute(&cfg, &opt_programs);
    let opt = parse(&opt_run);

    let before = base.nodes[0].by_name(&target).unwrap();
    let after = opt.nodes[0].by_name(&target).unwrap();
    assert!(
        after.inclusive_ns > before.inclusive_ns,
        "DVFS'd function must take longer"
    );
    let (b, a) = (
        before.peak_avg_f().unwrap_or(0.0),
        after.peak_avg_f().unwrap_or(0.0),
    );
    assert!(a < b, "DVFS'd function must run cooler: {a:.1} !< {b:.1}");
}

fn parse(run: &ClusterRun) -> ClusterProfile {
    ClusterProfile::new(
        run.traces
            .iter()
            .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
            .collect(),
    )
}

fn run_and_parse(bench: NpbBenchmark, class: Class) -> (ClusterRun, ClusterProfile) {
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &bench.programs(class, 4));
    let cluster = parse(&run);
    (run, cluster)
}
