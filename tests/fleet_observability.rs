//! End-to-end tests for the fleet observability plane: shipped
//! telemetry → collector fleet aggregation → HTTP surfaces → cross-node
//! frame tracing → flight recorder.
//!
//! The acceptance bar for telemetry is *exactness*: after a clean
//! session (final METRICS sent right before BYE, with every data frame
//! already acked), the collector's fleet view of a node must carry
//! byte-for-byte the same counter totals as that node's local registry.
//!
//! Like `ship_collect.rs`, every test binds ephemeral ports and
//! synchronizes on protocol completion, never wall-clock sleeps.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tempest_collect::{http_get, serve_metrics, Collector, CollectorConfig, CollectorHandle};
use tempest_obs::{Json, Registry};
use tempest_probe::ship::{self, RetryPolicy, ShipConfig};
use tempest_probe::spool::{self, FsyncPolicy, SpoolConfig, SpoolWriter, FLIGHT_DUMP_NAME};
use tempest_probe::trace::SensorMeta;
use tempest_probe::{Event, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
use tempest_sensors::{SensorId, SensorKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-fleettest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn node(node_id: u32) -> NodeMeta {
    NodeMeta {
        node_id,
        hostname: format!("node{node_id}.fleet"),
        sensors: vec![SensorMeta {
            id: SensorId(0),
            label: "die".into(),
            kind: SensorKind::CpuCore,
        }],
    }
}

fn functions() -> Vec<FunctionDef> {
    vec![FunctionDef {
        id: FunctionId(0),
        name: "work".into(),
        address: 0x40_0000,
        kind: ScopeKind::Function,
    }]
}

fn batch(i: u64) -> Vec<Event> {
    let t = i * 10_000;
    vec![
        Event::enter(t, ThreadId(0), FunctionId(0)),
        Event::sample(t + 1_000, SensorId(0), 40.0 + (i % 20) as f64),
        Event::exit(t + 9_000, ThreadId(0), FunctionId(0)),
    ]
}

fn build_spool(dir: &Path, node_id: u32, batches: u64) {
    let config = SpoolConfig::new(dir)
        .fsync(FsyncPolicy::PerBatch)
        .segment_bytes(4096);
    let mut w = SpoolWriter::create(&config, node(node_id)).unwrap();
    for i in 0..batches {
        w.append_batch(&batch(i)).unwrap();
        if w.should_rotate() {
            w.rotate(&functions()).unwrap();
        }
    }
    w.finish(&functions(), 0, 0).unwrap();
}

fn start_collector(
    out: &Path,
) -> (
    CollectorHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(out)).unwrap();
    let handle = collector.handle().unwrap();
    let thread = std::thread::spawn(move || collector.run());
    (handle, thread)
}

fn quick_retries() -> RetryPolicy {
    RetryPolicy {
        max_failures: 10,
        base_ms: 1,
        cap_ms: 5,
        seed: 0xF1EE7,
    }
}

/// Ship `dir` with its own private registry so per-node fleet totals
/// stay distinguishable inside one test process.
fn ship_with_registry(dir: &Path, addr: &str, session: &str) -> (ship::ShipReport, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let mut config = ShipConfig::new(dir, addr.to_string());
    config.session = session.to_string();
    config.retry = quick_retries();
    config.registry = Some(registry.clone());
    let report = ship::ship(&config).unwrap();
    (report, registry)
}

/// Minimal Prometheus exposition lint: every non-empty line is either a
/// comment or `name[{labels}] value` with a parseable float value.
fn assert_prometheus_parses(text: &str) {
    assert!(!text.trim().is_empty(), "empty exposition");
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value on line: {line}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value on line: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name on line: {line}"
        );
    }
}

#[test]
fn two_shippers_fleet_view_matches_local_registries_exactly() {
    let out = temp_dir("two-out");
    let src1 = temp_dir("two-src1");
    let src2 = temp_dir("two-src2");
    build_spool(&src1, 1, 30);
    build_spool(&src2, 2, 45);

    let (handle, server) = start_collector(&out);
    let addr = handle.addr().to_string();

    // The HTTP surface serves the same live fleet state the collector
    // aggregates into.
    let stop = Arc::new(AtomicBool::new(false));
    let metrics_server = serve_metrics("127.0.0.1:0", handle.fleet(), stop.clone()).unwrap();
    let http_addr = metrics_server.addr().to_string();

    // Two concurrent shippers, one session, distinct node ids.
    let (a1, a2) = (addr.clone(), addr.clone());
    let (s1, s2) = (src1.clone(), src2.clone());
    let t1 = std::thread::spawn(move || ship_with_registry(&s1, &a1, "fleet"));
    let t2 = std::thread::spawn(move || ship_with_registry(&s2, &a2, "fleet"));
    let (report1, reg1) = t1.join().unwrap();
    let (report2, reg2) = t2.join().unwrap();
    assert!(report1.complete && report2.complete);
    assert!(report1.telemetry_sent >= 2, "handshake + pre-BYE snapshots");

    // Exactness: the final pre-BYE snapshot is taken after the last
    // counter increment of the run, so the fleet copy and the local
    // registry must agree on every counter, not approximately.
    let fleet = handle.fleet();
    assert_eq!(fleet.len(), 2);
    for (record, local) in [("fleet-node1", &reg1), ("fleet-node2", &reg2)] {
        let nodes = fleet.nodes();
        let node = nodes
            .iter()
            .find(|n| n.key == record)
            .unwrap_or_else(|| panic!("{record} missing from fleet view"));
        assert_eq!(
            node.telemetry.snapshot.counters,
            local.snapshot().counters,
            "{record}: fleet counters diverge from the local registry"
        );
        assert_eq!(node.session, "fleet");
    }
    // Fleet-wide totals are the sum of the per-node registries.
    let total_acked: u64 = fleet
        .aggregate_counters()
        .into_iter()
        .find(|(name, _)| name == "ship_frames_acked_total")
        .map(|(_, v)| v)
        .unwrap();
    assert_eq!(total_acked, report1.frames_acked + report2.frames_acked);

    // /fleet.json is valid JSON carrying both nodes with full snapshots.
    let doc = http_get(&http_addr, "/fleet.json").unwrap();
    let v = Json::parse(&doc).expect("/fleet.json must parse");
    assert_eq!(v.get("node_count").and_then(|n| n.as_f64()), Some(2.0));
    let nodes = v.get("nodes").and_then(|n| n.as_arr()).unwrap();
    assert!(nodes.iter().all(|n| !n.get("metrics").unwrap().is_null()));

    // /metrics is parseable Prometheus exposition: the process registry
    // (collector counters included) plus the labelled fleet section.
    let prom = http_get(&http_addr, "/metrics").unwrap();
    assert_prometheus_parses(&prom);
    assert!(prom.contains("fleet_nodes 2"), "{prom}");
    assert!(
        prom.contains("fleet_node_counter{node=\"fleet-node1\""),
        "{prom}"
    );
    // The collector accepted telemetry and measured frame latency.
    let snap = tempest_obs::global().snapshot();
    assert!(snap.counter("collect_telemetry_total").unwrap_or(0) >= 2);
    let latency = snap
        .histogram("collect_frame_latency_ns")
        .expect("frame latency histogram must exist");
    assert!(latency.count > 0, "every DATA frame is latency-stamped");

    // Unknown paths 404 without killing the server.
    assert!(http_get(&http_addr, "/nope").is_err());
    let doc2 = http_get(&http_addr, "/fleet.json").unwrap();
    assert!(Json::parse(&doc2).is_ok());

    stop.store(true, Ordering::Relaxed);
    metrics_server.join();
    handle.shutdown();
    server.join().unwrap().unwrap();

    // The collected sessions carry the shipped telemetry and the
    // per-frame origin/collect stamps on disk.
    for key in ["fleet-node1", "fleet-node2"] {
        let (_, rep) = spool::recover(&out.join(key)).unwrap();
        assert!(rep.telemetry_frames >= 1, "{key}: spooled telemetry");
        assert!(!rep.frame_traces.is_empty(), "{key}: frame traces");
    }

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&src1).ok();
    std::fs::remove_dir_all(&src2).ok();
}

#[test]
fn fleet_chrome_export_carries_one_track_per_node() {
    let out = temp_dir("trace-out");
    let src1 = temp_dir("trace-src1");
    let src2 = temp_dir("trace-src2");
    build_spool(&src1, 1, 12);
    build_spool(&src2, 2, 12);

    let (handle, server) = start_collector(&out);
    let addr = handle.addr().to_string();
    ship_with_registry(&src1, &addr, "trace");
    ship_with_registry(&src2, &addr, "trace");
    handle.shutdown();
    server.join().unwrap().unwrap();

    let nodes: Vec<(String, Vec<spool::FrameTrace>)> = ["trace-node1", "trace-node2"]
        .iter()
        .map(|key| {
            let (_, rep) = spool::recover(&out.join(key)).unwrap();
            assert!(!rep.frame_traces.is_empty(), "{key} has no frame traces");
            (key.to_string(), rep.frame_traces)
        })
        .collect();
    let doc = tempest_core::chrome_fleet_trace_json(&nodes);
    let v = Json::parse(&doc).expect("fleet trace must parse");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();

    // One process per node, each with its ship→collect track.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert_eq!(process_names, vec!["trace-node1", "trace-node2"]);
    let tracks = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                == Some("ship→collect")
        })
        .count();
    assert_eq!(tracks, 2);
    // Every span is a ship-category duration event with non-negative,
    // monotonically positioned timestamps.
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    let total: usize = nodes.iter().map(|(_, t)| t.len()).sum();
    assert_eq!(spans.len(), total);
    for span in &spans {
        assert_eq!(span.get("cat").and_then(|c| c.as_str()), Some("ship"));
        assert!(span.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(span.get("dur").unwrap().as_f64().unwrap() >= 0.0);
    }

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&src1).ok();
    std::fs::remove_dir_all(&src2).ok();
}

#[test]
fn ship_degradation_dumps_the_flight_recorder_beside_the_spool() {
    let src = temp_dir("flight-src");
    let out = temp_dir("flight-out");
    build_spool(&src, 9, 40);

    // A collector whose frame limit is far below the shipped frames:
    // every send is refused until the retry budget degrades the shipper.
    let mut cc = CollectorConfig::new(&out);
    cc.max_frame_bytes = 64;
    let collector = Collector::bind("127.0.0.1:0", cc).unwrap();
    let handle = collector.handle().unwrap();
    let server = std::thread::spawn(move || collector.run());

    let mut sc = ShipConfig::new(&src, handle.addr().to_string());
    sc.session = "flight".into();
    sc.retry = RetryPolicy {
        max_failures: 2,
        base_ms: 1,
        cap_ms: 2,
        seed: 9,
    };
    let report = ship::ship(&sc).unwrap();
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(report.degraded);

    // Degradation dumped the black box next to the spool, as valid JSON
    // naming the reason — exactly what `tempest doctor` ingests.
    let dump = src.join(FLIGHT_DUMP_NAME);
    let text = std::fs::read_to_string(&dump).expect("flight.json must be dumped");
    let v = Json::parse(&text).expect("flight dump must parse");
    assert_eq!(
        v.get("reason").and_then(|r| r.as_str()),
        Some("ship degraded")
    );
    // The local spool stays fully recoverable after the dump.
    let (_, rep) = spool::recover(&src).unwrap();
    assert!(rep.clean_shutdown);

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}
