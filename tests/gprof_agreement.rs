//! Integration: §3.4's cross-tool check — "Both tools provided similar
//! results for total execution time in the various code functions."
//!
//! Tempest's timeline-based inclusive times and gprof's bucket cumulative
//! times are computed from the same event stream; on non-recursive codes
//! they must agree exactly, and the tools must disagree exactly where
//! gprof's known recursion double-counting kicks in.

use std::sync::Arc;
use tempest_core::timeline::Timeline;
use tempest_gprof::FlatProfile;
use tempest_probe::{MonotonicClock, Profiler, VecSink};
use tempest_workloads::micro::{run_native, Micro, MicroConfig};

fn events_for(micro: Micro) -> (Vec<tempest_probe::Event>, tempest_probe::FunctionRegistry) {
    let sink = VecSink::new();
    let profiler = Profiler::new(Arc::new(MonotonicClock::new()), sink.clone());
    let tp = profiler.thread_profiler();
    run_native(
        micro,
        MicroConfig {
            burn_ms: 24,
            timer_ms: 6,
            depth: 2,
        },
        &tp,
    );
    tp.flush();
    let mut events = sink.drain();
    events.sort_by_key(|e| e.timestamp_ns);
    (events, profiler.registry().clone())
}

#[test]
fn inclusive_times_agree_on_non_recursive_codes() {
    for micro in [Micro::A, Micro::B, Micro::C, Micro::D] {
        let (events, registry) = events_for(micro);
        let timeline = Timeline::build(&events);
        let flat = FlatProfile::from_events(&events);
        for (func, times) in &timeline.times {
            let bucket = flat.bucket(*func).unwrap();
            assert_eq!(
                times.inclusive_ns,
                bucket.cumulative_ns,
                "{micro:?}: {} differs between tools",
                registry.get(*func).unwrap().name
            );
            assert_eq!(times.calls, bucket.calls);
        }
    }
}

#[test]
fn exclusive_times_agree_everywhere() {
    // Self time has no recursion ambiguity: the innermost frame is the
    // innermost frame. Tools must agree on every benchmark, including E.
    for micro in Micro::ALL {
        let (events, _) = events_for(micro);
        let timeline = Timeline::build(&events);
        let flat = FlatProfile::from_events(&events);
        for (func, times) in &timeline.times {
            let bucket = flat.bucket(*func).unwrap();
            assert_eq!(times.exclusive_ns, bucket.self_ns, "{micro:?}");
        }
    }
}

#[test]
fn recursion_is_where_the_tools_differ() {
    // Benchmark E recurses: gprof double-counts the overlap, Tempest
    // counts wall presence once. gprof ≥ Tempest, strictly greater for
    // the recursive function.
    let (events, registry) = events_for(Micro::E);
    let timeline = Timeline::build(&events);
    let flat = FlatProfile::from_events(&events);
    let foo1 = registry.lookup("foo1").unwrap();
    let tempest_incl = timeline.times[&foo1].inclusive_ns;
    let gprof_cum = flat.bucket(foo1).unwrap().cumulative_ns;
    assert!(
        gprof_cum > tempest_incl,
        "gprof should double-count recursion: {gprof_cum} vs {tempest_incl}"
    );
}
