//! Loopback tests for the `tempest serve` query daemon and its v1 API:
//! golden schema pins for every `/api/v1/*` document, keep-alive /
//! ETag / `304 Not Modified` round-trips, byte-identical answers under
//! concurrent clients, cache-hit reuse on repeat questions, and 429
//! shedding under a rate limit.
//!
//! Every test binds an ephemeral port (`127.0.0.1:0`) and talks to the
//! daemon over a real TCP connection through [`HttpClient`], so the
//! HTTP/1.1 framing layer is exercised end to end.

use std::path::PathBuf;
use tempest_collect::{HttpClient, QueryConfig, QueryServer};
use tempest_obs::Json;
use tempest_probe::spool::{SpoolConfig, SpoolWriter};
use tempest_probe::trace::SensorMeta;
use tempest_probe::{Event, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
use tempest_sensors::{SensorId, SensorKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-queryapi-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write one sealed session spool under `parent/<name>` with a couple of
/// functions and enough samples for a meaningful hot-spot ranking.
fn write_session(parent: &std::path::Path, name: &str) -> PathBuf {
    let dir = parent.join(name);
    let cfg = SpoolConfig::new(&dir);
    let node = NodeMeta {
        node_id: 7,
        hostname: "query.loop".into(),
        sensors: vec![SensorMeta {
            id: SensorId(0),
            label: "die".into(),
            kind: SensorKind::CpuCore,
        }],
    };
    let mut w = SpoolWriter::create(&cfg, node).unwrap();
    let mut batch = Vec::new();
    for i in 0..50u64 {
        let t = i * 1_000_000;
        let f = FunctionId((i % 2) as u32);
        batch.push(Event::enter(t, ThreadId(0), f));
        batch.push(Event::sample(
            t + 1_000,
            SensorId(0),
            40.0 + (i % 25) as f64,
        ));
        batch.push(Event::exit(t + 900_000, ThreadId(0), f));
    }
    w.append_batch(&batch).unwrap();
    let funcs = vec![
        FunctionDef {
            id: FunctionId(0),
            name: "hot_loop".into(),
            address: 0x40_0000,
            kind: ScopeKind::Function,
        },
        FunctionDef {
            id: FunctionId(1),
            name: "cool_loop".into(),
            address: 0x40_0010,
            kind: ScopeKind::Function,
        },
    ];
    w.finish(&funcs, 0, 0).unwrap();
    dir
}

fn start(config: QueryConfig) -> QueryServer {
    QueryServer::start(config).expect("query daemon starts")
}

fn obj_keys(doc: &str) -> Vec<String> {
    match Json::parse(doc).expect("document parses as JSON") {
        Json::Obj(map) => map.keys().cloned().collect(),
        other => panic!("expected a JSON object, got {other:?}"),
    }
}

/// Every v1 document's top-level key set is pinned: adding a key is
/// backward-compatible (new fields), removing or renaming one is the
/// breaking change this test exists to catch.
#[test]
fn v1_schemas_are_pinned() {
    let parent = temp_dir("schema");
    write_session(&parent, "alpha");
    let server = start(QueryConfig {
        dir: parent.clone(),
        ..Default::default()
    });
    let addr = server.addr().to_string();
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, _, body) = client.get("/api/v1/health", &[]).unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj_keys(&body), ["jobs", "sessions", "status", "v"]);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("v").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));

    let (status, _, body) = client.get("/api/v1/sessions", &[]).unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj_keys(&body), ["session_count", "sessions", "v"]);
    let sessions = Json::parse(&body).unwrap();
    let list = sessions.get("sessions").and_then(|s| s.as_arr()).unwrap();
    assert_eq!(list.len(), 1);
    match &list[0] {
        Json::Obj(map) => {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(keys, ["bytes", "etag", "id", "segments"]);
        }
        other => panic!("session entry must be an object, got {other:?}"),
    }

    let (status, _, body) = client.get("/api/v1/sessions/alpha/profile", &[]).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        obj_keys(&body),
        [
            "functions",
            "hostname",
            "node_id",
            "quality",
            "sample_interval_ns",
            "span_s",
            "unattributed_samples",
            "v"
        ]
    );

    let (status, _, body) = client
        .get("/api/v1/sessions/alpha/hotspots?top=2&sort=time", &[])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj_keys(&body), ["session", "sort", "spots", "top", "v"]);
    let hot = Json::parse(&body).unwrap();
    assert_eq!(hot.get("sort").and_then(|s| s.as_str()), Some("time"));
    let spots = hot.get("spots").and_then(|s| s.as_arr()).unwrap();
    assert!(!spots.is_empty() && spots.len() <= 2, "{body}");

    let (status, _, body) = client.get("/api/v1/fleet", &[]).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        obj_keys(&body),
        [
            "generated_unix_ns",
            "node_count",
            "nodes",
            "stale_after_ms",
            "v"
        ]
    );

    // Unknown paths and sessions are 404s; bad query parameters are 400s.
    let (status, _, _) = client.get("/api/v2/health", &[]).unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = client.get("/api/v1/sessions/ghost/profile", &[]).unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = client
        .get("/api/v1/sessions/alpha/hotspots?top=zero", &[])
        .unwrap();
    assert_eq!(status, 400);
    let (status, _, _) = client
        .get("/api/v1/sessions/alpha/hotspots?sort=alphabetical", &[])
        .unwrap();
    assert_eq!(status, 400);

    server.join();
    std::fs::remove_dir_all(&parent).ok();
}

/// One connection, many requests: the daemon holds the line open, every
/// analysis answer carries a spool-CRC ETag, and presenting that ETag
/// back yields an empty-bodied `304 Not Modified`.
#[test]
fn keep_alive_etag_and_304_roundtrip() {
    let parent = temp_dir("etag");
    write_session(&parent, "alpha");
    let server = start(QueryConfig {
        dir: parent.clone(),
        ..Default::default()
    });
    let addr = server.addr().to_string();
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, headers, first) = client.get("/api/v1/sessions/alpha/profile", &[]).unwrap();
    assert_eq!(status, 200);
    let etag = headers
        .iter()
        .find(|(n, _)| n == "etag")
        .map(|(_, v)| v.clone())
        .expect("profile answers carry an ETag");
    assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");

    // Same connection, same question: identical bytes.
    let (status, _, second) = client.get("/api/v1/sessions/alpha/profile", &[]).unwrap();
    assert_eq!(status, 200);
    assert_eq!(first, second, "repeat answers must be byte-identical");

    // Conditional revalidation: matching ETag short-circuits to 304.
    let before = served_counter("serve_not_modified_total");
    let (status, headers, body) = client
        .get(
            "/api/v1/sessions/alpha/profile",
            &[("If-None-Match", &etag)],
        )
        .unwrap();
    assert_eq!(status, 304);
    assert!(body.is_empty(), "304 must carry no body");
    assert!(
        headers.iter().any(|(n, v)| n == "etag" && *v == etag),
        "304 repeats the entity tag"
    );
    assert!(served_counter("serve_not_modified_total") > before);

    // A non-matching tag gets the full answer again.
    let (status, _, body) = client
        .get(
            "/api/v1/sessions/alpha/profile",
            &[("If-None-Match", "\"deadbeef-0\"")],
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, first);

    assert_eq!(server.served(), 4);
    server.join();
    std::fs::remove_dir_all(&parent).ok();
}

fn served_counter(name: &str) -> u64 {
    tempest_obs::global().counter(name).get()
}

/// The load smoke from the acceptance bar: 8 concurrent keep-alive
/// clients asking the same hot-spot question under `--jobs 4` all get
/// byte-identical bodies, and a second pass over the same question is
/// served from the analysis cache (hit counter strictly grows).
#[test]
fn concurrent_clients_get_identical_cached_answers() {
    let parent = temp_dir("load");
    write_session(&parent, "alpha");
    write_session(&parent, "beta");
    let cache_dir = parent.join("cache");
    let server = start(QueryConfig {
        dir: parent.clone(),
        jobs: 4,
        cache_dir: Some(cache_dir.clone()),
        ..Default::default()
    });
    let addr = server.addr().to_string();

    let ask = |addr: String| -> Vec<String> {
        let mut client = HttpClient::connect(&addr).unwrap();
        (0..4)
            .map(|i| {
                let session = if i % 2 == 0 { "alpha" } else { "beta" };
                let (status, _, body) = client
                    .get(
                        &format!("/api/v1/sessions/{session}/hotspots?top=5&sort=temp"),
                        &[],
                    )
                    .unwrap();
                assert_eq!(status, 200);
                format!("{session}:{body}")
            })
            .collect()
    };

    let first_pass: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || ask(addr))
        })
        .collect();
    let mut bodies: Vec<Vec<String>> = first_pass.into_iter().map(|t| t.join().unwrap()).collect();
    let reference = bodies.pop().unwrap();
    for body in &bodies {
        assert_eq!(
            body, &reference,
            "every client must see byte-identical answers"
        );
    }

    // Second pass: every answer is already in the render cache.
    let hits_before = served_counter("cache_hits_total");
    let again = ask(addr);
    assert_eq!(again, reference);
    assert!(
        served_counter("cache_hits_total") > hits_before,
        "repeat questions must be served from the analysis cache"
    );

    server.join();
    std::fs::remove_dir_all(&parent).ok();
}

/// An overloaded daemon answers `429 Too Many Requests` promptly instead
/// of stalling the connection: with a 2 req/s budget, a 40-request burst
/// finishes fast and sees both outcomes.
#[test]
fn rate_limited_daemon_sheds_429_rather_than_stalls() {
    let parent = temp_dir("shed");
    write_session(&parent, "alpha");
    let server = start(QueryConfig {
        dir: parent.clone(),
        rate_limit: Some(2),
        ..Default::default()
    });
    let addr = server.addr().to_string();
    let shed_before = served_counter("serve_shed_total");

    let started = std::time::Instant::now();
    let mut ok = 0u32;
    let mut shed = 0u32;
    let mut client = HttpClient::connect(&addr).unwrap();
    for _ in 0..40 {
        let (status, _, _) = client.get("/api/v1/health", &[]).unwrap();
        match status {
            200 => ok += 1,
            429 => shed += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "the token bucket admits an initial burst");
    assert!(shed >= 1, "past the budget the daemon sheds");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "shedding must not stall the client"
    );
    assert!(served_counter("serve_shed_total") > shed_before);

    server.join();
    std::fs::remove_dir_all(&parent).ok();
}

/// A session that appears after startup is picked up by the background
/// re-scan without a restart, and the catalog answer reflects it.
#[test]
fn background_rescan_discovers_new_sessions() {
    let parent = temp_dir("rescan");
    write_session(&parent, "alpha");
    let server = start(QueryConfig {
        dir: parent.clone(),
        rescan_ms: 50,
        ..Default::default()
    });
    assert_eq!(server.session_count(), 1);

    write_session(&parent, "beta");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.session_count() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "re-scan never discovered the new session"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let addr = server.addr().to_string();
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, _, body) = client.get("/api/v1/sessions", &[]).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"id\":\"beta\""), "{body}");

    server.join();
    std::fs::remove_dir_all(&parent).ok();
}
