//! Integration: the full native pipeline, across crates.
//!
//! instrument (probe) → tempd samples (probe+sensors) → trace file
//! round-trip (probe) → parse (core) → report (core).

use std::sync::Arc;
use std::time::Duration;
use tempest_core::{report, AnalysisRequest};
use tempest_probe::tempd::TempdConfig;
use tempest_probe::{MonotonicClock, ProfilingSession};
use tempest_sensors::source::ConstantSource;
use tempest_sensors::{SensorKind, Temperature};
use tempest_workloads::native::burn::burn_for;

fn two_sensor_source() -> ConstantSource {
    ConstantSource::new(vec![
        (
            "CPU die".to_string(),
            SensorKind::CpuCore,
            Temperature::from_celsius(45.0),
        ),
        (
            "ambient".to_string(),
            SensorKind::Ambient,
            Temperature::from_celsius(25.0),
        ),
    ])
}

#[test]
fn native_session_to_report() {
    let session = ProfilingSession::start_with_sensors(
        Arc::new(MonotonicClock::new()),
        Box::new(two_sensor_source()),
        TempdConfig::at_rate(50.0),
    );
    let tp = session.thread_profiler();
    {
        let _main = tp.scope("main");
        {
            let _f = tp.scope("foo1");
            burn_for(Duration::from_millis(120));
        }
        {
            let _f = tp.scope("foo2");
            std::thread::sleep(Duration::from_millis(40));
        }
    }
    drop(tp);
    let trace = session.finish();

    // Trace file round-trip through a real file.
    let path = std::env::temp_dir().join(format!("tempest-e2e-{}.trace", std::process::id()));
    trace.save(&path).unwrap();
    let loaded = tempest_probe::trace::Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, trace);

    // Parse and check the profile.
    let profile = AnalysisRequest::new().analyze_trace(&loaded).unwrap();
    assert!(profile.warnings.is_empty());
    let main = profile.by_name("main").unwrap();
    let foo1 = profile.by_name("foo1").unwrap();
    assert!(main.inclusive_ns >= foo1.inclusive_ns);
    assert!(foo1.significant, "120 ms ≫ 20 ms sampling interval");
    // Constant 45 °C source → 113 °F on every attributed sample.
    let die_stats = foo1.thermal.values().next().unwrap();
    assert!((die_stats.avg - 113.0).abs() < 1e-6);
    assert_eq!(die_stats.min, die_stats.max);

    // Report renders the paper's format.
    let text = report::render_stdout(&profile);
    assert!(text.contains("Function: main"));
    assert!(text.contains("113.00"));
}

#[test]
fn disabled_profiler_yields_empty_but_valid_trace() {
    let session = ProfilingSession::start();
    session.profiler().set_enabled(false);
    let tp = session.thread_profiler();
    {
        let _g = tp.scope("invisible");
    }
    drop(tp);
    let trace = session.finish();
    assert!(trace.events.is_empty());
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    assert!(profile.functions.is_empty());
}

#[test]
fn multi_thread_native_profile_attributes_by_thread() {
    let session = ProfilingSession::start_with_sensors(
        Arc::new(MonotonicClock::new()),
        Box::new(two_sensor_source()),
        TempdConfig::at_rate(100.0),
    );
    let profiler = Arc::clone(session.profiler());
    let mut handles = Vec::new();
    for i in 0..3 {
        let p = Arc::clone(&profiler);
        handles.push(std::thread::spawn(move || {
            let tp = p.thread_profiler();
            let _g = tp.scope(if i == 0 { "writer" } else { "worker" });
            burn_for(Duration::from_millis(60));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let trace = session.finish();
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    let worker = profile.by_name("worker").unwrap();
    assert_eq!(worker.calls, 2, "two worker threads");
    assert!(profile.by_name("writer").is_some());
}
