//! Fault-injection matrix: the sense→trace→parse pipeline must degrade
//! gracefully, never panic.
//!
//! Three layers of damage are exercised together, mirroring what a real
//! cluster deployment produces: sensors that die or lie (sensors crate
//! fault harness), trace files truncated mid-write (probe salvage
//! reader), and event streams missing exits (corruption injectors +
//! recovering parser). The headline acceptance scenario: a four-node run
//! with one dead sensor, one rank's trace truncated at 60%, and 1% of
//! another rank's exit events dropped still produces a [`ClusterProfile`]
//! whose surviving-node hot-spot rankings match the fault-free run, with
//! [`DataQuality`] reporting every loss.

use std::time::Duration;
use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::analysis::hotspots;
use tempest_core::{AnalysisOptions, AnalysisRequest, ClusterProfile, NodeProfile};
use tempest_probe::corrupt::{truncate_at_fraction, TraceCorruptor};
use tempest_probe::event::EventKind;
use tempest_probe::tempd::{ResilientSampler, TempdConfig};
use tempest_probe::trace::Trace;
use tempest_probe::VecSink;
use tempest_sensors::faults::{FaultPlan, FaultySensorSource};
use tempest_sensors::node_model::{NodeThermalModel, NodeThermalParams};
use tempest_sensors::platform::PlatformSpec;
use tempest_sensors::sim::SimulatedSensorBank;
use tempest_sensors::SensorId;
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn cg_run() -> ClusterRun {
    let cfg = ClusterRunConfig::paper_default();
    ClusterRun::execute(&cfg, &NpbBenchmark::Cg.programs(Class::A, 4))
}

fn ranking(p: &NodeProfile) -> Vec<String> {
    hotspots(p, 5).into_iter().map(|h| h.name).collect()
}

/// The acceptance scenario from the issue: dead sensor + 60% truncation +
/// 1% dropped exits across a four-node run.
#[test]
fn damaged_cluster_still_ranks_hotspots() {
    let run = cg_run();
    let baseline: Vec<NodeProfile> = run
        .traces
        .iter()
        .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
        .collect();
    let baseline_rankings: Vec<Vec<String>> = baseline.iter().map(ranking).collect();
    assert!(
        baseline_rankings.iter().all(|r| !r.is_empty()),
        "baseline must have hot spots to compare against"
    );

    // Fault 1 — node 0 ran with one sensor dead the entire run.
    let mut t0 = run.traces[0].clone();
    let removed = TraceCorruptor::new(11).kill_sensor(&mut t0, SensorId(0));
    assert!(removed > 0, "sensor 0 should have had samples to remove");

    // Fault 2 — node 1's trace file was truncated at 60% (crash mid-write).
    let mut bytes = Vec::new();
    run.traces[1].write_to(&mut bytes).unwrap();
    let cut = truncate_at_fraction(&bytes, 0.6);
    let (t1, salvage) = Trace::read_salvage(&mut cut.as_slice()).unwrap();
    assert!(
        salvage.truncated_in.is_some(),
        "60% cut must lose something"
    );

    // Fault 3 — node 2 lost 1% of its exit events (instrumentation bug).
    let mut t2 = run.traces[2].clone();
    let dropped_exits = TraceCorruptor::new(13).drop_exit_events(&mut t2, 0.01);
    assert!(dropped_exits > 0);

    // Node 3 is untouched.
    let opts = AnalysisOptions::recovering();
    let p0 = AnalysisRequest::new()
        .with_options(opts)
        .analyze_trace(&t0)
        .unwrap();
    let p1 = AnalysisRequest::new()
        .with_options(opts)
        .analyze_salvaged(&t1, Some(&salvage))
        .unwrap();
    let p2 = AnalysisRequest::new()
        .with_options(opts)
        .analyze_trace(&t2)
        .unwrap();
    let p3 = AnalysisRequest::new()
        .with_options(opts)
        .analyze_trace(&run.traces[3])
        .unwrap();

    // Every loss is reported, nothing silently absorbed.
    assert!(
        p0.quality.sensor_coverage < 1.0,
        "dead sensor must dent coverage, got {}",
        p0.quality.sensor_coverage
    );
    assert!(
        p1.quality.events_lost_in_salvage + p1.quality.samples_lost_in_salvage > 0,
        "truncation losses must be recorded: {}",
        p1.quality
    );
    assert!(
        !p2.warnings.is_empty(),
        "dropped exits must surface as timeline repairs"
    );
    assert!(p3.quality.is_pristine(), "untouched node: {}", p3.quality);

    let cluster = ClusterProfile::with_expected(vec![p0, p1, p2, p3], 4);
    assert_eq!(cluster.node_count(), 4);
    assert!(cluster.missing_node_ids().is_empty());
    assert_eq!(cluster.node_coverage(), 1.0);

    // Hot-spot rankings on nodes whose timing survived intact (0: lost a
    // sensor, 3: untouched) match the fault-free run exactly.
    for idx in [0usize, 3] {
        assert_eq!(
            ranking(&cluster.nodes[idx]),
            baseline_rankings[idx],
            "node {idx} ranking diverged from fault-free run"
        );
    }
    // Node 2 lost 1% of its exits: force-closing those frames can promote
    // extra functions into the list, but the fault-free hot spots must
    // keep their relative order, led by the same top function.
    let damaged = ranking(&cluster.nodes[2]);
    assert_eq!(damaged.first(), baseline_rankings[2].first());
    let mut cursor = damaged.iter();
    for want in &baseline_rankings[2] {
        assert!(
            cursor.any(|got| got == want),
            "node 2 lost or reordered hot spot {want}: {damaged:?} vs {:?}",
            baseline_rankings[2]
        );
    }
    // The truncated node still profiles; its top function is one the
    // fault-free run also ranked (the prefix preserves the big spenders).
    let truncated_ranking = ranking(&cluster.nodes[1]);
    if let Some(top) = truncated_ranking.first() {
        assert!(
            baseline_rankings[1].contains(top),
            "truncated node's top spot {top} unknown to baseline {:?}",
            baseline_rankings[1]
        );
    }

    // The cluster-wide damage report names the degraded nodes.
    let report = cluster.quality_report();
    assert!(report.contains("degraded"), "{report}");
    assert!(report.contains("ok"), "{report}");
}

/// A cluster where one rank's trace is wholly lost still merges: the
/// survivors carry the statistics and the shortfall is reported.
#[test]
fn missing_rank_tolerated_by_cluster_merge() {
    let run = cg_run();
    let opts = AnalysisOptions::recovering();
    // Rank 2's trace never made it off the node.
    let survivors: Vec<NodeProfile> = run
        .traces
        .iter()
        .filter(|t| t.node.node_id != 2)
        .map(|t| {
            AnalysisRequest::new()
                .with_options(opts)
                .analyze_trace(t)
                .unwrap()
        })
        .collect();
    let cluster = ClusterProfile::with_expected(survivors, 4);
    assert_eq!(cluster.node_count(), 3);
    assert_eq!(cluster.missing_node_ids(), vec![2]);
    assert!((cluster.node_coverage() - 0.75).abs() < 1e-9);
    assert!(cluster.quality_report().contains("missing"));
    // Cross-node statistics still work over the survivors.
    assert!(cluster.node_divergence_f().is_some());
    assert_eq!(cluster.node_summaries().len(), 3);
}

fn sim_bank() -> SimulatedSensorBank {
    SimulatedSensorBank::new(
        PlatformSpec::opteron_full(),
        NodeThermalModel::new(NodeThermalParams::opteron_node()),
        7,
        0.1,
    )
}

/// Every fault kind — alone and stacked — must flow through the resilient
/// sampler without panicking, and the sampler's health ledger must add up.
#[test]
fn every_fault_plan_completes_without_panic() {
    let plans = vec![
        ("dropout", FaultPlan::new(1).dropout(SensorId(0), 0.5)),
        (
            "stuck",
            FaultPlan::new(2).stuck_at(SensorId(1), 1_000_000_000),
        ),
        ("spike", FaultPlan::new(3).spike(SensorId(2), 0.3, 25.0)),
        ("nan", FaultPlan::new(4).poison_nan(SensorId(3), 0.3)),
        (
            "slow",
            FaultPlan::new(5).slow_read(SensorId(0), 0.5, Duration::from_micros(200)),
        ),
        ("dead", FaultPlan::new(6).dead_after(SensorId(1), 0)),
        (
            "storm",
            FaultPlan::new(7)
                .dropout(SensorId(0), 0.9)
                .stuck_at(SensorId(1), 0)
                .spike(SensorId(2), 0.5, 40.0)
                .poison_nan(SensorId(3), 0.5)
                .dead_after(SensorId(4), 500_000_000)
                .slow_read(SensorId(5), 0.2, Duration::from_micros(100)),
        ),
    ];
    for (name, plan) in plans {
        let mut faulty = FaultySensorSource::new(Box::new(sim_bank()), plan);
        let config = TempdConfig {
            retry_backoff: Duration::ZERO, // don't sleep in tests
            ..TempdConfig::at_rate(4.0)
        };
        let mut sampler = ResilientSampler::new(config);
        let sink = VecSink::new();
        for round in 0..50u64 {
            sampler.round(&mut faulty, round * 250_000_000, sink.as_ref());
        }
        let health = sampler.health();
        let events = sink.drain();
        let samples = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Sample { .. }))
            .count() as u64;
        let gaps = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Gap { .. }))
            .count() as u64;
        assert_eq!(samples, health.reads_ok, "{name}: sample accounting");
        assert_eq!(gaps, health.gaps_emitted, "{name}: gap accounting");
        assert_eq!(
            health.reads_ok + health.missed_reads,
            50 * 6,
            "{name}: every sensor-round accounted for (ok {} missed {})",
            health.reads_ok,
            health.missed_reads
        );
        let coverage = health.coverage();
        assert!(
            (0.0..=1.0).contains(&coverage),
            "{name}: coverage {coverage}"
        );
    }
}

/// Truncating a serialized trace at every section boundary region still
/// salvages a usable prefix, and recovered profiles never panic.
#[test]
fn truncation_sweep_salvages_or_errors_never_panics() {
    let run = cg_run();
    let mut bytes = Vec::new();
    run.traces[0].write_to(&mut bytes).unwrap();
    for pct in [0.0, 0.05, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9, 0.99, 1.0] {
        let cut = truncate_at_fraction(&bytes, pct);
        match Trace::read_salvage(&mut cut.as_slice()) {
            Ok((trace, report)) => {
                // Whatever survived must analyse cleanly in recover mode.
                let p = AnalysisRequest::new()
                    .recover(true)
                    .analyze_salvaged(&trace, Some(&report))
                    .unwrap();
                if report.truncated_in.is_some() {
                    assert!(p.quality.recovered);
                }
            }
            Err(e) => {
                // Only a cut inside the magic/header may be unreadable.
                assert!(pct < 0.05, "cut at {pct} should salvage, got {e}");
            }
        }
    }
}

/// Poisoned symbol ids and scrambled timestamp windows: strict parsing
/// reports a typed error, recovery analyses the remainder and counts the
/// drops.
#[test]
fn poisoned_and_scrambled_traces_recover_with_accounting() {
    let run = cg_run();
    let mut t = run.traces[0].clone();
    let mut corruptor = TraceCorruptor::new(21);
    let poisoned = corruptor.poison_symbol_ids(&mut t, 0.02);
    let span = t.span_ns();
    let scrambled = corruptor.shuffle_timestamp_window(&mut t, span / 4, span / 10);
    assert!(poisoned > 0 && scrambled > 0);

    assert!(
        AnalysisRequest::new().analyze_trace(&t).is_err(),
        "strict mode must reject the damage"
    );
    let p = AnalysisRequest::new()
        .recover(true)
        .analyze_trace(&t)
        .unwrap();
    assert_eq!(p.quality.events_dropped_unknown_func, poisoned);
    assert!(
        p.quality.events_dropped_nonmonotonic > 0,
        "scramble should force monotonic drops"
    );
    assert!(!p.quality.is_pristine());
    assert!(!ranking(&p).is_empty(), "profile still usable");
}
