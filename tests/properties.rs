//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use tempest_core::stats::SummaryStats;
use tempest_core::timeline::Timeline;
use tempest_probe::event::{Event, ThreadId};
use tempest_probe::func::{FunctionDef, FunctionId, ScopeKind};
use tempest_probe::trace::{NodeMeta, SensorMeta, Trace};
use tempest_sensors::rc_model::RcNode;
use tempest_sensors::{Quantization, SensorId, SensorReading, Temperature};

// ---------- statistics ----------------------------------------------------

proptest! {
    #[test]
    fn stats_invariants(samples in prop::collection::vec(-50.0f64..150.0, 1..200)) {
        let mut s = SummaryStats::from_samples(&samples);
        let sum = s.summary().unwrap();
        prop_assert!(sum.min <= sum.avg + 1e-9);
        prop_assert!(sum.avg <= sum.max + 1e-9);
        prop_assert!(sum.min <= sum.med && sum.med <= sum.max);
        prop_assert!((sum.var - sum.sdv * sum.sdv).abs() < 1e-6);
        prop_assert!(sum.sdv >= 0.0);
        // Mode is one of the samples.
        prop_assert!(samples.contains(&sum.mode));
        prop_assert_eq!(sum.count, samples.len());
    }

    #[test]
    fn stats_are_permutation_invariant(mut samples in prop::collection::vec(0.0f64..100.0, 2..50)) {
        let mut a = SummaryStats::from_samples(&samples);
        samples.reverse();
        let mut b = SummaryStats::from_samples(&samples);
        let (x, y) = (a.summary().unwrap(), b.summary().unwrap());
        prop_assert_eq!(x.min, y.min);
        prop_assert_eq!(x.max, y.max);
        prop_assert!((x.avg - y.avg).abs() < 1e-9);
        prop_assert_eq!(x.med, y.med);
        prop_assert_eq!(x.mode, y.mode);
    }
}

// ---------- timeline reconstruction ---------------------------------------

/// Generate a random well-nested call tree as an event stream, returning
/// the events and the total span.
fn arb_nested_events() -> impl Strategy<Value = Vec<Event>> {
    // A sequence of enter/exit decisions over a small function alphabet.
    prop::collection::vec((0u32..6, prop::bool::ANY), 1..60).prop_map(|ops| {
        let mut events = Vec::new();
        let mut stack: Vec<FunctionId> = Vec::new();
        let mut t = 0u64;
        for (f, enter) in ops {
            t += 7;
            if enter || stack.is_empty() {
                let id = FunctionId(f);
                stack.push(id);
                events.push(Event::enter(t, ThreadId(0), id));
            } else {
                let id = stack.pop().unwrap();
                events.push(Event::exit(t, ThreadId(0), id));
            }
        }
        // Close what's left, well-nested.
        while let Some(id) = stack.pop() {
            t += 7;
            events.push(Event::exit(t, ThreadId(0), id));
        }
        events
    })
}

proptest! {
    #[test]
    fn well_nested_streams_reconstruct_cleanly(events in arb_nested_events()) {
        let tl = Timeline::build(&events);
        prop_assert!(tl.warnings.is_empty(), "warnings on well-nested input: {:?}", tl.warnings);
        // Enter count == interval count.
        let enters = events.iter().filter(|e| matches!(e.kind,
            tempest_probe::event::EventKind::Enter { .. })).count();
        prop_assert_eq!(tl.intervals.len(), enters);
        // No interval is inverted, none escapes the span.
        for iv in &tl.intervals {
            prop_assert!(iv.start_ns <= iv.end_ns);
            prop_assert!(iv.start_ns >= tl.span.0 && iv.end_ns <= tl.span.1);
            prop_assert!(!iv.truncated);
        }
        // Exclusive times partition the busy span: sum over functions of
        // exclusive == total stack-occupied time == span when a frame is
        // always open... compute occupied time directly instead.
        let excl: u64 = tl.times.values().map(|t| t.exclusive_ns).sum();
        prop_assert!(excl <= tl.span_ns());
        // Inclusive of any function ≤ span; ≥ its own exclusive.
        for times in tl.times.values() {
            prop_assert!(times.inclusive_ns <= tl.span_ns());
            prop_assert!(times.inclusive_ns >= times.exclusive_ns);
        }
    }

    #[test]
    fn truncated_streams_never_panic_and_close_everything(
        events in arb_nested_events(),
        cut in 0usize..40,
    ) {
        let cut = cut.min(events.len());
        let tl = Timeline::build(&events[..cut]);
        // All intervals closed at or before the last timestamp.
        for iv in &tl.intervals {
            prop_assert!(iv.end_ns <= tl.span.1);
        }
    }
}

// ---------- trace round-trip ----------------------------------------------

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec((0u32..4, 0u64..1_000, prop::bool::ANY), 0..40),
        prop::collection::vec((0u16..3, 0u64..1_000, -10.0f64..110.0), 0..40),
        "[a-z]{1,12}",
    )
        .prop_map(|(evs, samps, host)| {
            let functions: Vec<FunctionDef> = (0..4)
                .map(|i| FunctionDef {
                    id: FunctionId(i),
                    name: format!("fn{i}"),
                    address: 0x400000 + 16 * i as u64,
                    kind: if i % 2 == 0 {
                        ScopeKind::Function
                    } else {
                        ScopeKind::Block
                    },
                })
                .collect();
            let mut events: Vec<Event> = evs
                .into_iter()
                .map(|(f, t, enter)| {
                    if enter {
                        Event::enter(t, ThreadId(0), FunctionId(f))
                    } else {
                        Event::exit(t, ThreadId(0), FunctionId(f))
                    }
                })
                .collect();
            events.sort_by_key(|e| e.timestamp_ns);
            let mut samples: Vec<SensorReading> = samps
                .into_iter()
                .map(|(s, t, c)| SensorReading::new(SensorId(s), t, Temperature::from_celsius(c)))
                .collect();
            samples.sort_by_key(|s| s.timestamp_ns);
            Trace {
                node: NodeMeta {
                    node_id: 3,
                    hostname: host,
                    sensors: vec![SensorMeta {
                        id: SensorId(0),
                        label: "die".to_string(),
                        kind: tempest_sensors::SensorKind::CpuCore,
                    }],
                },
                functions,
                events,
                samples,
            }
        })
}

proptest! {
    #[test]
    fn trace_binary_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    // Cutting the serialized bytes at ANY offset either salvages a valid
    // prefix of the original trace or returns a typed error — never a
    // panic, and never silently invented data.
    #[test]
    fn any_truncation_salvages_prefix_or_errors(
        trace in arb_trace(),
        raw_cut in 0usize..8192,
    ) {
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let cut = raw_cut.min(buf.len());
        let short = &buf[..cut];
        match Trace::read_salvage(&mut &short[..]) {
            Ok((back, report)) => {
                // Whatever survived is a byte-faithful prefix.
                prop_assert!(back.events.len() <= trace.events.len());
                prop_assert_eq!(&back.events[..], &trace.events[..back.events.len()]);
                prop_assert!(back.samples.len() <= trace.samples.len());
                prop_assert_eq!(&back.samples[..], &trace.samples[..back.samples.len()]);
                // The report's accounting matches what came back.
                prop_assert_eq!(report.events_salvaged as usize, back.events.len());
                prop_assert_eq!(report.samples_salvaged as usize, back.samples.len());
                if cut == buf.len() {
                    prop_assert!(report.is_clean(), "full buffer must salvage clean");
                    prop_assert_eq!(back, trace);
                }
            }
            Err(_) => {
                // A typed error is only acceptable before any payload could
                // exist: cuts inside the magic or node-meta header.
            }
        }
        // The strict reader must reject every proper prefix (all sections
        // are length-prefixed), and must not panic either.
        if cut < buf.len() {
            prop_assert!(Trace::read_from(&mut &short[..]).is_err());
        }
    }
}

// ---------- thermal model ---------------------------------------------------

proptest! {
    #[test]
    fn rc_node_stays_bounded_and_converges(
        r in 0.05f64..1.0,
        c in 5.0f64..500.0,
        p in 0.0f64..200.0,
        steps in 1usize..50,
    ) {
        let amb = Temperature::from_celsius(25.0);
        let mut node = RcNode::at_equilibrium(r, c, amb);
        let ss = node.steady_state(p, amb);
        for _ in 0..steps {
            node.advance(3.0, p, amb);
            // Monotone approach, never overshooting.
            prop_assert!(node.temperature >= amb - 1e-9);
            prop_assert!(node.temperature <= ss + 1e-9);
        }
        // Long run converges.
        node.advance(50.0 * node.time_constant(), p, amb);
        prop_assert!((node.temperature - ss).abs() < 1e-6);
    }

    #[test]
    fn rc_step_size_invariance(
        dt_splits in 1u32..20,
        p in 0.0f64..150.0,
    ) {
        let amb = Temperature::from_celsius(25.0);
        let mut whole = RcNode::at_equilibrium(0.3, 60.0, amb);
        let mut split = whole.clone();
        whole.advance(12.0, p, amb);
        for _ in 0..dt_splits {
            split.advance(12.0 / dt_splits as f64, p, amb);
        }
        prop_assert!((whole.temperature - split.temperature).abs() < 1e-9);
    }

    #[test]
    fn quantisation_error_within_half_step(c in -20.0f64..120.0) {
        let t = Temperature::from_celsius(c);
        for q in [Quantization::CPU_GRID, Quantization::AMBIENT_GRID] {
            let err = (q.apply(t) - t).abs();
            prop_assert!(err <= q.max_error_celsius() + 1e-9);
        }
    }
}

// ---------- simulator determinism ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn engine_is_deterministic(seed in 0u64..1_000) {
        use tempest_cluster::{ClusterRun, ClusterRunConfig};
        use tempest_workloads::npb::NpbBenchmark;
        use tempest_workloads::Class;
        let mut cfg = ClusterRunConfig::paper_default();
        cfg.seed = seed;
        let programs = NpbBenchmark::Cg.programs(Class::S, 4);
        let a = ClusterRun::execute(&cfg, &programs);
        let b = ClusterRun::execute(&cfg, &programs);
        prop_assert_eq!(a.engine.end_ns, b.engine.end_ns);
        prop_assert_eq!(&a.traces, &b.traces);
    }
}

// ---------- engine invariants ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn engine_segments_never_overlap_per_core(
        secs in 0.01f64..0.5,
        np in 1usize..9,
        barriers in 0usize..3,
    ) {
        use tempest_cluster::{engine, ClusterSpec, NetworkModel, Placement, Program};
        use tempest_sensors::power::ActivityMix;
        let spec = ClusterSpec::new(4, 4, Placement::Spread);
        let program = {
            let mut b = Program::builder().enter("main");
            for _ in 0..=barriers {
                b = b.compute(secs, ActivityMix::Balanced);
                if barriers > 0 {
                    b = b.barrier();
                }
            }
            b.ret().build()
        };
        let programs = vec![program; np];
        let out = engine::run(&spec, &NetworkModel::gigabit_ethernet(), &programs, &[1.0; 4]);

        // Per-(node, core) segments are disjoint.
        let mut per_core: std::collections::HashMap<(usize, usize), Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for s in &out.segments {
            per_core.entry((s.node, s.core)).or_default().push((s.start_ns, s.end_ns));
        }
        for spans in per_core.values_mut() {
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
        }
        // Blocked time never exceeds runtime; ends bounded by makespan.
        for r in 0..np {
            prop_assert!(out.comm_blocked_ns[r] <= out.rank_end_ns[r]);
            prop_assert!(out.rank_end_ns[r] <= out.end_ns);
        }
        // Each rank's event stream is well-nested (balanced, monotone).
        for events in &out.events_per_rank {
            let mut depth = 0i64;
            let mut prev = 0u64;
            for e in events {
                prop_assert!(e.timestamp_ns >= prev);
                prev = e.timestamp_ns;
                match e.kind {
                    tempest_probe::event::EventKind::Enter { .. } => depth += 1,
                    tempest_probe::event::EventKind::Exit { .. } => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0);
            }
            prop_assert_eq!(depth, 0);
        }
    }
}
