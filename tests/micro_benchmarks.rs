//! Integration: Table-1 micro-benchmarks through the whole system, in both
//! native and simulated form (E1).

use std::sync::Arc;
use tempest_cluster::{ClusterRun, ClusterRunConfig, ClusterSpec, Placement};
use tempest_core::{AnalysisRequest, NodeProfile};
use tempest_probe::trace::{NodeMeta, Trace};
use tempest_probe::{MonotonicClock, Profiler, VecSink};
use tempest_workloads::micro::{program, run_native, Micro, MicroConfig};

fn native_profile(micro: Micro) -> NodeProfile {
    let sink = VecSink::new();
    let profiler = Profiler::new(Arc::new(MonotonicClock::new()), sink.clone());
    let tp = profiler.thread_profiler();
    run_native(
        micro,
        MicroConfig {
            burn_ms: 30,
            timer_ms: 8,
            depth: 2,
        },
        &tp,
    );
    tp.flush();
    let trace = Trace::from_mixed_events(
        NodeMeta::anonymous(),
        profiler.registry().snapshot(),
        sink.drain(),
    );
    AnalysisRequest::new().analyze_trace(&trace).unwrap()
}

#[test]
fn all_five_reconstruct_without_repairs_natively() {
    for micro in Micro::ALL {
        let p = native_profile(micro);
        assert!(p.warnings.is_empty(), "{micro:?} produced repairs");
        assert!(p.by_name("main").is_some());
    }
}

#[test]
fn benchmark_d_simulated_matches_figure_2_shape() {
    // foo1 heats the CPU; the foo2 timer lets it cool — check the actual
    // sensor series, not just the profile.
    let mut cfg = ClusterRunConfig::paper_default();
    cfg.spec = ClusterSpec::new(1, 4, Placement::Spread);
    cfg.thermal.hetero_seed = None;
    cfg.thermal.noise_sigma_c = 0.0;
    let run = ClusterRun::execute(&cfg, &[program(Micro::D, 30.0, 4.0)]);
    let trace = &run.traces[0];

    let die: Vec<(u64, f64)> = trace
        .samples
        .iter()
        .filter(|s| s.sensor.0 == 3)
        .map(|s| (s.timestamp_ns, s.temperature.fahrenheit()))
        .collect();
    let at = |t_s: f64| {
        die.iter()
            .min_by_key(|(ts, _)| (*ts as i64 - (t_s * 1e9) as i64).abs())
            .unwrap()
            .1
    };
    assert!(at(29.5) > at(0.2) + 5.0, "foo1 heats the die");
    assert!(at(33.5) < at(29.5), "foo2's timer lets it cool");

    // And the profile agrees with Table 1's structure.
    let profile = AnalysisRequest::new().analyze_trace(trace).unwrap();
    assert_eq!(profile.by_name("foo2").unwrap().calls, 2);
    let foo1 = profile.by_name("foo1").unwrap();
    assert!(foo1.significant);
    // foo1's max die temperature exceeds its min: the function ran at
    // different temperatures over its lifetime (§3.1's motivation).
    let die_stats = foo1
        .thermal
        .values()
        .max_by(|a, b| a.max.partial_cmp(&b.max).unwrap())
        .unwrap();
    assert!(die_stats.max - die_stats.min > 3.0);
}

#[test]
fn benchmark_e_simulated_recursion() {
    let mut cfg = ClusterRunConfig::paper_default();
    cfg.spec = ClusterSpec::new(1, 4, Placement::Spread);
    let run = ClusterRun::execute(&cfg, &[program(Micro::E, 8.0, 1.0)]);
    let profile = AnalysisRequest::new()
        .analyze_trace(&run.traces[0])
        .unwrap();
    let foo1 = profile.by_name("foo1").unwrap();
    assert_eq!(foo1.calls, 2, "two nested foo1 frames");
    let main = profile.by_name("main").unwrap();
    assert!(
        foo1.inclusive_ns <= main.inclusive_ns,
        "recursion must not double-count inclusive time"
    );
}
