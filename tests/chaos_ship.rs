//! Adversarial network-collection suite: ships sessions through the
//! seeded chaos proxy (delays, connection resets, byte truncation, bit
//! flips) and asserts the exactly-once contract holds regardless:
//!
//! * zero acked frames lost — the collected trace equals the source;
//! * zero frames duplicated — recovery reports `frames_deduped == 0`
//!   (duplicates are acked without ever being written);
//! * the collector-side analysis renders byte-identical to analyzing
//!   the source spool locally.
//!
//! I/O-heavy and timing-dependent, so like the crash-torture suite it
//! only runs when `TEMPEST_CHAOS=1` (ci.sh exposes the gate). All
//! randomness flows from `TEMPEST_CHAOS_SEED` (default fixed); ports are
//! always ephemeral and synchronization is protocol completion, never a
//! wall-clock sleep.

use std::path::{Path, PathBuf};
use tempest_collect::{ChaosConfig, ChaosProxy, Collector, CollectorConfig};
use tempest_core::report::render_stdout;
use tempest_core::AnalysisRequest;
use tempest_probe::ship::{self, RetryPolicy, ShipConfig};
use tempest_probe::spool::{self, FsyncPolicy, SpoolConfig, SpoolWriter};
use tempest_probe::trace::SensorMeta;
use tempest_probe::{Event, FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
use tempest_sensors::{SensorId, SensorKind};

fn chaos_enabled() -> bool {
    std::env::var("TEMPEST_CHAOS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn base_seed() -> u64 {
    std::env::var("TEMPEST_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xBAD_CAB1E)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempest-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn build_spool(dir: &Path, node_id: u32, batches: u64) {
    let config = SpoolConfig::new(dir)
        .fsync(FsyncPolicy::PerBatch)
        .segment_bytes(4096);
    let node = NodeMeta {
        node_id,
        hostname: format!("chaos{node_id}"),
        sensors: vec![SensorMeta {
            id: SensorId(0),
            label: "die".into(),
            kind: SensorKind::CpuCore,
        }],
    };
    let functions: Vec<FunctionDef> = (0..4)
        .map(|i| FunctionDef {
            id: FunctionId(i),
            name: format!("hot_{i}"),
            address: 0x40_0000 + 16 * i as u64,
            kind: ScopeKind::Function,
        })
        .collect();
    let mut w = SpoolWriter::create(&config, node).unwrap();
    for i in 0..batches {
        let t = i * 10_000;
        let f = FunctionId((i % 4) as u32);
        w.append_batch(&[
            Event::enter(t, ThreadId(0), f),
            Event::sample(t + 500, SensorId(0), 45.0 + (i % 30) as f64),
            Event::exit(t + 9_000, ThreadId(0), f),
        ])
        .unwrap();
        if w.should_rotate() {
            w.rotate(&functions).unwrap();
        }
    }
    w.finish(&functions, 0, 0).unwrap();
}

fn analysis_of(dir: &Path) -> (tempest_probe::Trace, String) {
    let (trace, _) = spool::recover(dir).unwrap();
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    (trace, render_stdout(&profile))
}

/// One scenario: ship a 50-batch session through the proxy, then verify
/// the exactly-once contract. Returns faults injected by the proxy.
fn run_scenario(name: &str, chaos: ChaosConfig, scenario_seed: u64) -> u64 {
    let src = temp_dir(&format!("src-{name}"));
    let out = temp_dir(&format!("out-{name}"));
    build_spool(&src, 1, 50);

    let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(&out)).unwrap();
    let handle = collector.handle().unwrap();
    let server = std::thread::spawn(move || collector.run());
    let proxy = ChaosProxy::start(handle.addr(), chaos).unwrap();

    let mut sc = ShipConfig::new(&src, proxy.addr().to_string());
    sc.session = name.to_string();
    sc.retry = RetryPolicy {
        max_failures: 100,
        base_ms: 1,
        cap_ms: 10,
        seed: scenario_seed,
    };
    let report = ship::ship(&sc).unwrap();
    let faults = proxy.faults_injected();
    proxy.stop();

    // The proxy's worst case is a degraded shipper (budget exhausted
    // with the collector itself healthy). The run must still converge
    // once the path clears: ship the remainder directly and assert the
    // chaotic prefix caused neither loss nor duplication.
    let report = if report.complete {
        report
    } else {
        eprintln!("scenario {name}: degraded under chaos ({report:?}); finishing direct");
        let mut direct = sc.clone();
        direct.addr = handle.addr().to_string();
        ship::ship(&direct).unwrap()
    };
    handle.shutdown();
    server.join().unwrap().unwrap();
    assert!(
        report.complete,
        "scenario {name}: session never completed: {report:?}"
    );

    let (src_trace, src_text) = analysis_of(&src);
    let collected = out.join(format!("{name}-node1"));
    let (dst_trace, dst_text) = analysis_of(&collected);
    assert_eq!(
        src_trace, dst_trace,
        "scenario {name}: collected trace lost or mutated frames"
    );
    assert_eq!(
        src_text, dst_text,
        "scenario {name}: analysis not byte-identical"
    );
    let (_, rec) = spool::recover(&collected).unwrap();
    assert!(rec.clean_shutdown, "scenario {name}: footer missing");
    assert_eq!(
        rec.frames_deduped, 0,
        "scenario {name}: a duplicate frame reached the collector's disk"
    );
    assert_eq!(
        rec.frames_discarded, 0,
        "scenario {name}: corrupt bytes reached the collector's disk"
    );

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
    faults
}

#[test]
fn chaos_proxy_cannot_break_exactly_once_collection() {
    if !chaos_enabled() {
        eprintln!("chaos suite skipped (set TEMPEST_CHAOS=1 to run)");
        return;
    }
    let seed = base_seed();
    let scenarios: Vec<(&str, ChaosConfig)> = vec![
        (
            "resets",
            ChaosConfig {
                reset_per_10k: 400,
                ..ChaosConfig::passthrough(seed)
            },
        ),
        (
            "truncation",
            ChaosConfig {
                truncate_per_10k: 400,
                ..ChaosConfig::passthrough(seed.wrapping_add(1))
            },
        ),
        (
            "bitflips",
            ChaosConfig {
                flip_per_10k: 300,
                ..ChaosConfig::passthrough(seed.wrapping_add(2))
            },
        ),
        (
            "kitchen-sink",
            ChaosConfig {
                seed: seed.wrapping_add(3),
                delay_ms_max: 2,
                reset_per_10k: 150,
                truncate_per_10k: 150,
                flip_per_10k: 150,
            },
        ),
    ];
    let mut faults_total = 0;
    for (i, (name, chaos)) in scenarios.into_iter().enumerate() {
        faults_total += run_scenario(name, chaos, seed.wrapping_add(100 + i as u64));
    }
    assert!(
        faults_total > 0,
        "the chaos schedules never injected a single fault — dials too low"
    );
}

/// Degradation path under chaos: a collector that stays down past the
/// retry budget must leave the shipper degraded (not erroring) and the
/// local spool fully analyzable.
#[test]
fn chaos_collector_down_leaves_local_spool_usable() {
    if !chaos_enabled() {
        eprintln!("chaos suite skipped (set TEMPEST_CHAOS=1 to run)");
        return;
    }
    let src = temp_dir("src-down");
    build_spool(&src, 2, 20);
    // Learn a free port, then close it: connects will be refused.
    let free = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = free.local_addr().unwrap();
    drop(free);

    let mut sc = ShipConfig::new(&src, addr.to_string());
    sc.retry = RetryPolicy {
        max_failures: 3,
        base_ms: 1,
        cap_ms: 4,
        seed: base_seed(),
    };
    let report = ship::ship(&sc).unwrap();
    assert!(report.degraded);
    assert!(!report.complete);
    assert_eq!(report.frames_acked, 0);
    assert!(report.backoff_ms > 0, "degradation must have backed off");

    // The run is still usable locally — the whole point of degrading.
    let (trace, rec) = spool::recover(&src).unwrap();
    assert!(rec.clean_shutdown);
    assert_eq!(trace.events.len(), 40);
    assert!(AnalysisRequest::new().analyze_trace(&trace).is_ok());
    std::fs::remove_dir_all(&src).ok();
}
