//! Kill-9 crash torture for the durable spool (DESIGN.md "Durability
//! model"). A writer subprocess streams batches to a spool directory
//! with per-batch fsync, acknowledging each batch on stdout only after
//! the fsync returns. This test SIGKILLs it at randomized points —
//! including mid-write and around segment rotations — and asserts that
//! recovery always yields a checksum-clean prefix containing at least
//! every acknowledged batch.
//!
//! Expensive and I/O-heavy, so it only runs when `TEMPEST_TORTURE=1`
//! (ci.sh exposes the gate); the seed is fixed for reproducibility and
//! overridable via `TEMPEST_TORTURE_SEED`.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use tempest_probe::spool;

/// xorshift64*: tiny deterministic PRNG, no dependency budget spent.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn torture_enabled() -> bool {
    std::env::var("TEMPEST_TORTURE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn seed() -> u64 {
    std::env::var("TEMPEST_TORTURE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FF_EE00_DEAD_BEEF)
}

fn fresh_dir(iter: u32) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "tempest-crash-torture-{}-{iter}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn kill9_always_leaves_a_recoverable_prefix() {
    if !torture_enabled() {
        eprintln!("crash torture skipped (set TEMPEST_TORTURE=1 to run)");
        return;
    }
    let mut rng = Rng(seed());
    const ITERATIONS: u32 = 8;
    for iter in 0..ITERATIONS {
        let dir = fresh_dir(iter);
        // Vary the kill point (in acked batches) and segment size so
        // kills land in small and large segments, early and late.
        let kill_after = 1 + rng.below(60);
        let segment_bytes = 4096 + rng.below(4) * 4096;
        let mut child = Command::new(env!("CARGO_BIN_EXE_torture_writer"))
            .arg(&dir)
            .arg(segment_bytes.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn torture_writer");

        let mut acked = 0u64;
        {
            let stdout = child.stdout.take().expect("child stdout");
            for line in BufReader::new(stdout).lines() {
                let line = line.expect("read ack");
                let n: u64 = line
                    .strip_prefix("acked ")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("bad ack line: {line:?}"));
                acked = n;
                if acked >= kill_after {
                    break;
                }
            }
        }
        // SIGKILL: no destructors, no flush, no fsync — the worst case.
        child.kill().expect("kill");
        child.wait().expect("wait");

        let (trace, report) = spool::recover(&dir)
            .unwrap_or_else(|e| panic!("iter {iter}: recovery failed after kill: {e}"));
        assert!(
            !report.clean_shutdown,
            "iter {iter}: a SIGKILLed session must not look clean"
        );
        // The durability contract: every acked batch (1 enter + 1 sample
        // + 1 exit, fsynced before the ack) survives.
        assert!(
            report.events_recovered >= acked * 2,
            "iter {iter}: acked {acked} batches but recovered only {} events",
            report.events_recovered
        );
        assert!(
            report.samples_recovered >= acked,
            "iter {iter}: acked {acked} batches but recovered only {} samples",
            report.samples_recovered
        );
        // The salvaged prefix is well-formed: the writer emits batch i at
        // base timestamp i*1ms, so recovered events are time-ordered and
        // every sample carries the finite temperature written for it.
        let mut last_ts = 0;
        for e in &trace.events {
            assert!(
                e.timestamp_ns >= last_ts,
                "iter {iter}: events out of order"
            );
            last_ts = e.timestamp_ns;
        }
        for s in &trace.samples {
            let c = s.temperature.celsius();
            assert!(
                (40.0..90.0).contains(&c),
                "iter {iter}: sample {c} outside the written range"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
