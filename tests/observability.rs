//! Observability-layer integration tests: the metrics registry under
//! thread hammering, and the Chrome trace_event export golden checks.

use std::collections::HashMap;
use std::sync::Arc;

use tempest_core::{chrome_trace_json, Timeline};
use tempest_obs::{Json, Registry};
use tempest_probe::{Event, EventKind, TraceGenerator, TraceSpec};
use tempest_sensors::SensorId;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

/// N threads hammer the same counter, gauge, and histogram handles; the
/// totals must be exact — the registry promises lock-free-ish recording,
/// not sloppy recording.
#[test]
fn registry_concurrent_totals_are_exact() {
    let reg = Arc::new(Registry::new());
    let counter = reg.counter("hammer_total");
    let histogram = reg.histogram("hammer_value");
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let counter = counter.clone();
        let histogram = histogram.clone();
        let reg = Arc::clone(&reg);
        handles.push(std::thread::spawn(move || {
            // Mix resolved-handle use with by-name re-resolution: both must
            // hit the same metric.
            let resolved_again = reg.counter("hammer_total");
            for i in 0..OPS_PER_THREAD {
                counter.inc();
                resolved_again.add(3);
                histogram.record(t * OPS_PER_THREAD + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let expected_ops = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(counter.get(), expected_ops * 4, "1 inc + add(3) per op");
    assert_eq!(histogram.count(), expected_ops);
    let expected_sum: u64 = (0..expected_ops).sum();
    assert_eq!(histogram.sum(), expected_sum);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer_total"), Some(expected_ops * 4));
    let hs = snap.histogram("hammer_value").unwrap();
    assert_eq!(
        hs.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        expected_ops
    );
}

/// Disabling the registry mid-hammer may lose an unpredictable number of
/// increments, but re-enabling must never corrupt the count: the final
/// value is bounded by what was submitted.
#[test]
fn registry_toggle_never_corrupts() {
    let reg = Arc::new(Registry::new());
    let counter = reg.counter("toggle_total");
    let flipper = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            for i in 0..100 {
                reg.set_enabled(i % 2 == 0);
                std::thread::yield_now();
            }
            reg.set_enabled(true);
        })
    };
    let mut handles = Vec::new();
    for _ in 0..4 {
        let counter = counter.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..OPS_PER_THREAD {
                counter.inc();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    flipper.join().unwrap();
    assert!(counter.get() <= 4 * OPS_PER_THREAD);
}

fn generated_trace_with_gaps() -> tempest_probe::Trace {
    let spec = TraceSpec {
        seed: 11,
        events: 6_000,
        threads: 4,
        sensors: 3,
        ..TraceSpec::default()
    };
    let mut trace = TraceGenerator::new(spec).generate(2);
    // Inject sensor gaps (quarantine markers) so the instant-event path is
    // exercised; keep the event stream time-sorted.
    let mid = trace.events[trace.events.len() / 2].timestamp_ns;
    trace.events.push(Event::gap(mid, SensorId(0)));
    trace.events.push(Event::gap(mid + 1, SensorId(1)));
    trace
        .events
        .sort_by_key(|e| (e.timestamp_ns, e.thread.0, e.is_scope_event()));
    trace
}

/// Golden-file shape test for the Chrome export: valid JSON, the right
/// event phases, monotonically non-decreasing `ts` per thread, and event
/// counts that round-trip exactly.
#[test]
fn chrome_trace_export_golden() {
    let trace = generated_trace_with_gaps();
    let doc = chrome_trace_json(&trace);
    let parsed = Json::parse(&doc).expect("chrome-trace export must be valid JSON");

    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let phase = |e: &Json| e.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for e in events {
        *counts.entry(phase(e)).or_insert(0) += 1;
    }

    // Round-trip: every timeline interval is one "X", every sample one
    // "C", every gap one "i".
    let timeline = Timeline::build(&trace.events);
    assert_eq!(counts.get("X"), Some(&timeline.intervals.len()));
    assert_eq!(counts.get("C"), Some(&trace.samples.len()));
    let gaps = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Gap { .. }))
        .count();
    assert_eq!(counts.get("i"), Some(&gaps));
    assert!(
        counts.get("M").copied().unwrap_or(0) >= 2,
        "metadata events"
    );

    // Monotonically non-decreasing ts within every thread's duration track.
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    for e in events.iter().filter(|e| phase(e) == "X") {
        let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap() as i64;
        let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(
                ts >= prev,
                "ts must be non-decreasing within tid {tid}: {prev} then {ts}"
            );
        }
        last_ts.insert(tid, ts);
        assert!(e.get("dur").is_some());
        assert!(e.get("name").is_some());
    }

    // Counter tracks carry numeric temperatures.
    for e in events.iter().filter(|e| phase(e) == "C") {
        let celsius = e
            .get("args")
            .and_then(|a| a.get("celsius"))
            .and_then(|c| c.as_f64())
            .expect("counter events carry args.celsius");
        assert!(celsius.is_finite());
    }
}

/// Drive the real pipeline — spool (with telemetry) → ship → collect →
/// recover → analyze (stages) → result cache — against the global
/// registry, then lint every name it registered: Prometheus exposition
/// charset, unique across metric kinds, and spelled out in the
/// DESIGN.md §9 inventory. The name set is closed, not emergent; adding
/// a metric means adding its inventory row.
#[test]
fn metric_names_are_valid_and_inventoried() {
    use std::collections::BTreeSet;
    use tempest_collect::{Collector, CollectorConfig};
    use tempest_core::{AnalysisOptions, AnalysisRequest};
    use tempest_probe::ship::{self, RetryPolicy, ShipConfig};
    use tempest_probe::spool::{self, FsyncPolicy, SpoolConfig, SpoolWriter};
    use tempest_probe::trace::SensorMeta;
    use tempest_probe::{FunctionDef, FunctionId, NodeMeta, ScopeKind, ThreadId};
    use tempest_sensors::SensorKind;

    let src = std::env::temp_dir().join(format!("tempest-lint-src-{}", std::process::id()));
    let out = std::env::temp_dir().join(format!("tempest-lint-out-{}", std::process::id()));
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();

    let node = NodeMeta {
        node_id: 12,
        hostname: "lint.host".into(),
        sensors: vec![SensorMeta {
            id: SensorId(0),
            label: "die".into(),
            kind: SensorKind::CpuCore,
        }],
    };
    let funcs = vec![FunctionDef {
        id: FunctionId(0),
        name: "work".into(),
        address: 0x1000,
        kind: ScopeKind::Function,
    }];
    let mut w =
        SpoolWriter::create(&SpoolConfig::new(&src).fsync(FsyncPolicy::PerBatch), node).unwrap();
    for i in 0..20u64 {
        w.append_batch(&[
            Event::enter(i * 10_000, ThreadId(0), FunctionId(0)),
            Event::sample(i * 10_000 + 1_000, SensorId(0), 42.0),
            Event::exit(i * 10_000 + 9_000, ThreadId(0), FunctionId(0)),
        ])
        .unwrap();
    }
    w.finish(&funcs, 0, 0).unwrap();

    let collector = Collector::bind("127.0.0.1:0", CollectorConfig::new(&out)).unwrap();
    let handle = collector.handle().unwrap();
    let server = std::thread::spawn(move || collector.run());
    let mut sc = ShipConfig::new(&src, handle.addr().to_string());
    sc.session = "lint".into();
    sc.retry = RetryPolicy {
        max_failures: 10,
        base_ms: 1,
        cap_ms: 5,
        seed: 1,
    };
    assert!(ship::ship(&sc).unwrap().complete);
    handle.shutdown();
    server.join().unwrap().unwrap();

    let (trace, _) = spool::recover(&out.join("lint-node12")).unwrap();
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    let cache_dir = out.join("cache");
    let cache = tempest_core::AnalysisCache::open(&cache_dir).unwrap();
    let key =
        tempest_core::cache::CacheKey::new(&trace.to_bytes(), AnalysisOptions::default(), "lint");
    assert!(cache.lookup(&key).is_none());
    cache
        .store(&key, &tempest_core::report::render_stdout(&profile))
        .unwrap();
    assert!(cache.lookup(&key).is_some());

    let snap = tempest_obs::global().snapshot();
    let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    let gauges: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
    let histograms: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
    // The run must actually have exercised every major family, or the
    // lint below is vacuous.
    for expected in [
        "spool_frames_total",
        "spool_telemetry_frames_total",
        "ship_frames_acked_total",
        "ship_telemetry_sent_total",
        "collect_frames_total",
        "collect_telemetry_total",
        "cache_hits_total",
    ] {
        assert!(counters.contains(&expected), "{expected} not registered");
    }
    assert!(histograms.contains(&"collect_frame_latency_ns"));
    assert!(histograms.contains(&"stage_timeline_ns"));

    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md must be readable from the workspace root");
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for name in counters.iter().chain(&gauges).chain(&histograms) {
        // Prometheus exposition charset, lowercase by convention here.
        assert!(
            name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "metric name `{name}` breaks the exposition charset"
        );
        // A name must mean one thing: no counter/gauge/histogram aliasing.
        assert!(seen.insert(name), "metric name `{name}` used by two kinds");
        // Inventoried in DESIGN.md §9, with per-node digit runs
        // normalised to their {id} placeholder.
        let normalized = name
            .split('_')
            .map(|part| {
                if !part.is_empty() && part.chars().all(|c| c.is_ascii_digit()) {
                    "{id}".to_string()
                } else {
                    part.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("_");
        assert!(
            design.contains(&format!("`{name}`")) || design.contains(&format!("`{normalized}`")),
            "metric `{name}` is missing from the DESIGN.md §9 inventory"
        );
    }

    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&out).ok();
}

/// The export must stay loadable after a decode round-trip (what the CLI
/// actually exports is a decoded file, not an in-memory trace).
#[test]
fn chrome_trace_export_survives_trace_io() {
    let trace = generated_trace_with_gaps();
    let bytes = trace.to_bytes();
    let decoded = tempest_probe::Trace::decode(&bytes).unwrap();
    let a = chrome_trace_json(&trace);
    let b = chrome_trace_json(&decoded);
    assert_eq!(a, b, "export must be deterministic across encode/decode");
}
