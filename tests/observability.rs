//! Observability-layer integration tests: the metrics registry under
//! thread hammering, and the Chrome trace_event export golden checks.

use std::collections::HashMap;
use std::sync::Arc;

use tempest_core::{chrome_trace_json, Timeline};
use tempest_obs::{Json, Registry};
use tempest_probe::{Event, EventKind, TraceGenerator, TraceSpec};
use tempest_sensors::SensorId;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

/// N threads hammer the same counter, gauge, and histogram handles; the
/// totals must be exact — the registry promises lock-free-ish recording,
/// not sloppy recording.
#[test]
fn registry_concurrent_totals_are_exact() {
    let reg = Arc::new(Registry::new());
    let counter = reg.counter("hammer_total");
    let histogram = reg.histogram("hammer_value");
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let counter = counter.clone();
        let histogram = histogram.clone();
        let reg = Arc::clone(&reg);
        handles.push(std::thread::spawn(move || {
            // Mix resolved-handle use with by-name re-resolution: both must
            // hit the same metric.
            let resolved_again = reg.counter("hammer_total");
            for i in 0..OPS_PER_THREAD {
                counter.inc();
                resolved_again.add(3);
                histogram.record(t * OPS_PER_THREAD + i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let expected_ops = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(counter.get(), expected_ops * 4, "1 inc + add(3) per op");
    assert_eq!(histogram.count(), expected_ops);
    let expected_sum: u64 = (0..expected_ops).sum();
    assert_eq!(histogram.sum(), expected_sum);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer_total"), Some(expected_ops * 4));
    let hs = snap.histogram("hammer_value").unwrap();
    assert_eq!(
        hs.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        expected_ops
    );
}

/// Disabling the registry mid-hammer may lose an unpredictable number of
/// increments, but re-enabling must never corrupt the count: the final
/// value is bounded by what was submitted.
#[test]
fn registry_toggle_never_corrupts() {
    let reg = Arc::new(Registry::new());
    let counter = reg.counter("toggle_total");
    let flipper = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            for i in 0..100 {
                reg.set_enabled(i % 2 == 0);
                std::thread::yield_now();
            }
            reg.set_enabled(true);
        })
    };
    let mut handles = Vec::new();
    for _ in 0..4 {
        let counter = counter.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..OPS_PER_THREAD {
                counter.inc();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    flipper.join().unwrap();
    assert!(counter.get() <= 4 * OPS_PER_THREAD);
}

fn generated_trace_with_gaps() -> tempest_probe::Trace {
    let spec = TraceSpec {
        seed: 11,
        events: 6_000,
        threads: 4,
        sensors: 3,
        ..TraceSpec::default()
    };
    let mut trace = TraceGenerator::new(spec).generate(2);
    // Inject sensor gaps (quarantine markers) so the instant-event path is
    // exercised; keep the event stream time-sorted.
    let mid = trace.events[trace.events.len() / 2].timestamp_ns;
    trace.events.push(Event::gap(mid, SensorId(0)));
    trace.events.push(Event::gap(mid + 1, SensorId(1)));
    trace
        .events
        .sort_by_key(|e| (e.timestamp_ns, e.thread.0, e.is_scope_event()));
    trace
}

/// Golden-file shape test for the Chrome export: valid JSON, the right
/// event phases, monotonically non-decreasing `ts` per thread, and event
/// counts that round-trip exactly.
#[test]
fn chrome_trace_export_golden() {
    let trace = generated_trace_with_gaps();
    let doc = chrome_trace_json(&trace);
    let parsed = Json::parse(&doc).expect("chrome-trace export must be valid JSON");

    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let phase = |e: &Json| e.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for e in events {
        *counts.entry(phase(e)).or_insert(0) += 1;
    }

    // Round-trip: every timeline interval is one "X", every sample one
    // "C", every gap one "i".
    let timeline = Timeline::build(&trace.events);
    assert_eq!(counts.get("X"), Some(&timeline.intervals.len()));
    assert_eq!(counts.get("C"), Some(&trace.samples.len()));
    let gaps = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Gap { .. }))
        .count();
    assert_eq!(counts.get("i"), Some(&gaps));
    assert!(
        counts.get("M").copied().unwrap_or(0) >= 2,
        "metadata events"
    );

    // Monotonically non-decreasing ts within every thread's duration track.
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    for e in events.iter().filter(|e| phase(e) == "X") {
        let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap() as i64;
        let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(
                ts >= prev,
                "ts must be non-decreasing within tid {tid}: {prev} then {ts}"
            );
        }
        last_ts.insert(tid, ts);
        assert!(e.get("dur").is_some());
        assert!(e.get("name").is_some());
    }

    // Counter tracks carry numeric temperatures.
    for e in events.iter().filter(|e| phase(e) == "C") {
        let celsius = e
            .get("args")
            .and_then(|a| a.get("celsius"))
            .and_then(|c| c.as_f64())
            .expect("counter events carry args.celsius");
        assert!(celsius.is_finite());
    }
}

/// The export must stay loadable after a decode round-trip (what the CLI
/// actually exports is a decoded file, not an in-memory trace).
#[test]
fn chrome_trace_export_survives_trace_io() {
    let trace = generated_trace_with_gaps();
    let bytes = trace.to_bytes();
    let decoded = tempest_probe::Trace::decode(&bytes).unwrap();
    let a = chrome_trace_json(&trace);
    let b = chrome_trace_json(&decoded);
    assert_eq!(a, b, "export must be deterministic across encode/decode");
}
