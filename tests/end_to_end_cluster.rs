//! Integration: the full simulated-cluster pipeline, across crates.
//!
//! workload models (workloads) → engine + thermal replay (cluster +
//! sensors) → per-node traces (probe) → parse & merge (core) → the
//! paper's cluster-level observations.

use tempest_cluster::{ClusterRun, ClusterRunConfig};
use tempest_core::{AnalysisRequest, ClusterProfile};
use tempest_workloads::npb::NpbBenchmark;
use tempest_workloads::Class;

fn parse_cluster(run: &ClusterRun) -> ClusterProfile {
    ClusterProfile::new(
        run.traces
            .iter()
            .map(|t| AnalysisRequest::new().analyze_trace(t).unwrap())
            .collect(),
    )
}

#[test]
fn ft_run_reproduces_paper_observations() {
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Ft.programs(Class::A, 4));
    // ~half the time in all-to-all (§4.3).
    let comm = run.engine.comm_fraction(0);
    assert!((0.2..0.8).contains(&comm), "FT comm fraction {comm}");

    let cluster = parse_cluster(&run);
    assert_eq!(cluster.node_count(), 4);
    // Every node profiled the same function inventory.
    for node in &cluster.nodes {
        for f in ["MAIN__", "evolve_", "cffts1_", "transpose_x_yz_"] {
            assert!(
                node.by_name(f).is_some(),
                "{f} missing on node {}",
                node.node.node_id
            );
        }
    }
    // Nodes diverge thermally under identical load (§4).
    let (lo, hi) = cluster.node_divergence_f().unwrap();
    assert!(hi > lo, "no divergence at all?");
}

#[test]
fn bt_run_has_significant_table3_functions() {
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Bt.programs(Class::A, 4));
    let cluster = parse_cluster(&run);
    let node0 = &cluster.nodes[0];
    let adi = node0.by_name("adi_").unwrap();
    let matvec = node0.by_name("matvec_sub").unwrap();
    let matmul = node0.by_name("matmul_sub").unwrap();
    assert!(adi.significant && matvec.significant && matmul.significant);
    assert!(adi.inclusive_ns > matvec.inclusive_ns);
    assert!(matvec.inclusive_ns > matmul.inclusive_ns);
    // Six sensor rows each (Table 3).
    assert_eq!(adi.thermal.len(), 6);
}

#[test]
fn traces_survive_disk_roundtrip_per_node() {
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Cg.programs(Class::S, 4));
    let dir = std::env::temp_dir().join(format!("tempest-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for t in &run.traces {
        let path = dir.join(format!("node{}.trace", t.node.node_id));
        t.save(&path).unwrap();
        let back = tempest_probe::trace::Trace::load(&path).unwrap();
        assert_eq!(&back, t);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulated_and_reported_spans_agree() {
    let cfg = ClusterRunConfig::paper_default();
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Ep.programs(Class::W, 4));
    let cluster = parse_cluster(&run);
    for (node, trace) in cluster.nodes.iter().zip(&run.traces) {
        let main = node.by_name("MAIN__").unwrap();
        // MAIN__ inclusive time equals the rank's simulated runtime.
        let rank = trace.node.node_id as usize;
        let expect = run.engine.rank_end_ns[rank];
        assert_eq!(main.inclusive_ns, expect);
    }
}

#[test]
fn every_npb_benchmark_flows_through_the_pipeline() {
    let mut cfg = ClusterRunConfig::paper_default();
    cfg.thermal.noise_sigma_c = 0.0;
    for bench in NpbBenchmark::ALL {
        let run = ClusterRun::execute(&cfg, &bench.programs(Class::S, 4));
        let cluster = parse_cluster(&run);
        for node in &cluster.nodes {
            assert!(
                node.by_name("MAIN__").is_some(),
                "{}: MAIN__ missing",
                bench.name()
            );
            assert!(node.warnings.is_empty(), "{}: trace repairs", bench.name());
            // A handful of samples legitimately fall outside any function:
            // the tick at exactly the rank's exit (half-open intervals) and
            // ticks after this node's rank finished while others still run.
            assert!(
                node.unattributed_samples * 6 < node.functions.len().max(1) * 1000,
                "{}: too many orphan samples ({})",
                bench.name(),
                node.unattributed_samples
            );
        }
    }
}

#[test]
fn np_one_single_node_degenerate_case() {
    let mut cfg = ClusterRunConfig::paper_default();
    cfg.spec = tempest_cluster::ClusterSpec::new(1, 4, tempest_cluster::Placement::Spread);
    let run = ClusterRun::execute(&cfg, &NpbBenchmark::Ft.programs(Class::S, 1));
    assert_eq!(run.traces.len(), 1);
    let cluster = parse_cluster(&run);
    assert!(cluster.nodes[0].by_name("MAIN__").is_some());
}
