//! Integration: the non-transparent basic-block API.
//!
//! §3.2: "Tempest also supports measurement at basic block granularity
//! using libtempestperblk.so. Basic block measurement is non-transparent
//! and requires explicit API calls." In the reproduction that's
//! [`tempest_probe::profile_block!`] / `ThreadProfiler::block` — blocks
//! register with `ScopeKind::Block`, flow through the same trace and
//! parser, and appear in the report alongside functions.

use std::sync::Arc;
use std::time::Duration;
use tempest_core::AnalysisRequest;
use tempest_probe::func::ScopeKind;
use tempest_probe::tempd::TempdConfig;
use tempest_probe::{profile_block, profile_fn, MonotonicClock, ProfilingSession};
use tempest_sensors::source::ConstantSource;
use tempest_workloads::native::burn::burn_for;

#[test]
fn blocks_profile_alongside_functions() {
    let session = ProfilingSession::start_with_sensors(
        Arc::new(MonotonicClock::new()),
        Box::new(ConstantSource::single(42.0)),
        TempdConfig::at_rate(100.0),
    );
    let tp = session.thread_profiler();
    {
        profile_fn!(&tp, "solver");
        // Two explicitly instrumented basic blocks inside one function.
        for _ in 0..3 {
            {
                profile_block!(&tp, "forward_elimination");
                burn_for(Duration::from_millis(25));
            }
            {
                profile_block!(&tp, "back_substitution");
                burn_for(Duration::from_millis(12));
            }
        }
    }
    drop(tp);
    let trace = session.finish();

    // The symbol table distinguishes blocks from functions.
    let fe = trace
        .functions
        .iter()
        .find(|f| f.name == "forward_elimination")
        .expect("block registered");
    assert_eq!(fe.kind, ScopeKind::Block);
    let solver = trace.functions.iter().find(|f| f.name == "solver").unwrap();
    assert_eq!(solver.kind, ScopeKind::Function);

    // The parser profiles blocks like any scope.
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    let fe = profile.by_name("forward_elimination").unwrap();
    let bs = profile.by_name("back_substitution").unwrap();
    assert_eq!(fe.calls, 3);
    assert_eq!(bs.calls, 3);
    assert!(
        fe.inclusive_ns > bs.inclusive_ns,
        "25 ms×3 block must outweigh 12 ms×3 block"
    );
    // Both blocks ran long enough (≥ one 10 ms sampling interval) for
    // thermal significance.
    assert!(fe.significant);
    assert!(bs.significant);
    assert!((fe.thermal.values().next().unwrap().avg - 107.6).abs() < 0.1); // 42 °C

    // Blocks nest inside their enclosing function's inclusive time.
    let solver = profile.by_name("solver").unwrap();
    assert!(solver.inclusive_ns >= fe.inclusive_ns + bs.inclusive_ns);
}

#[test]
fn mixed_granularity_timeline_stays_well_nested() {
    let session = ProfilingSession::start();
    let tp = session.thread_profiler();
    {
        profile_fn!(&tp, "outer");
        {
            profile_block!(&tp, "blk_a");
            {
                profile_fn!(&tp, "inner_fn");
                {
                    profile_block!(&tp, "blk_b");
                }
            }
        }
    }
    drop(tp);
    let trace = session.finish();
    let profile = AnalysisRequest::new().analyze_trace(&trace).unwrap();
    assert!(
        profile.warnings.is_empty(),
        "mixed nesting must reconstruct"
    );
    assert_eq!(profile.functions.len(), 4);
}
